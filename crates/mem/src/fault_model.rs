//! Pluggable fault models: how stuck-at cells are *distributed* over an
//! array.
//!
//! The paper's Monte-Carlo campaigns draw every cell independently at the
//! voltage-derived BER ([`FaultMap::regenerate`]), but real near-threshold
//! SRAM fails in structure: shared wordline defects produce runs of bad
//! cells along the physical word order, process variation concentrates
//! failures in weak columns shared by every word of a bank, and per-bank
//! voltage-domain drift makes whole banks systematically leakier than
//! their neighbours. A [`FaultModel`] is one such distribution: it draws
//! deterministically from a trial seed into an existing [`FaultMap`]
//! without allocating, mirroring the `clear`/`regenerate` re-arm contract
//! campaign workers rely on.
//!
//! [`FaultModel::Iid`] is **bit-identical** to [`FaultMap::regenerate`]
//! at the same `(ber, seed)` — the scenario engine's golden differential
//! tests depend on that equivalence.
//!
//! ```
//! use dream_mem::{BerModel, FaultMap, FaultModel, MemGeometry};
//!
//! let geometry = MemGeometry::new(4096, 16, 16);
//! let mut map = FaultMap::empty(geometry.words(), 22);
//! let model = FaultModel::Burst { ber: 1e-3, mean_run_len: 8.0 };
//! model.arm(&mut map, &geometry, &BerModel::date16(), 7);
//! assert!(map.fault_count() > 0);
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ber::BerModel;
use crate::fault::{FaultMap, StuckAt};
use crate::geometry::MemGeometry;

/// A spatial distribution of stuck-at faults over a memory array.
///
/// Every variant is deterministic in `(parameters, seed)` and re-arms an
/// existing [`FaultMap`] in place (no allocation), so campaign workers can
/// reuse one map across thousands of trials exactly as they do with
/// [`FaultMap::regenerate`].
#[derive(Clone, Debug, PartialEq)]
pub enum FaultModel {
    /// Every cell fails independently at `ber` — the paper's §V model.
    /// Drawing is bit-identical to [`FaultMap::regenerate`].
    Iid {
        /// Per-cell failure probability.
        ber: f64,
    },
    /// Faults arrive in geometric run-length clusters along the physical
    /// word order (shared wordline / write-driver defects): burst starts
    /// are placed so the *mean* cell failure rate stays `ber`, and each
    /// burst extends over a geometrically distributed number of
    /// consecutive cells with mean `mean_run_len`.
    Burst {
        /// Target mean per-cell failure probability.
        ber: f64,
        /// Mean burst length in cells (`>= 1`; `1` degenerates to
        /// independent draws, statistically).
        mean_run_len: f64,
    },
    /// A fraction of the fault budget concentrates in one *weak column*
    /// per bank — a bit lane shared by every word the bank serves
    /// (column-mux / sense-amp defects). `column_weight` of the expected
    /// faults land on the weak columns; the rest stay i.i.d. background.
    ColumnCorrelated {
        /// Target mean per-cell failure probability (weak columns
        /// included).
        ber: f64,
        /// Fraction of the fault budget on the weak columns (`0.0` =
        /// pure i.i.d., `1.0` = every fault on a weak column).
        column_weight: f64,
    },
    /// Each bank sits in its own voltage domain that drifts from the
    /// array supply: bank `b` operates at `nominal_v + bank_offsets[b %
    /// len]` volts, and its cells fail independently at the BER the
    /// supplied [`BerModel`] assigns to that effective voltage.
    PerBankVoltage {
        /// Supply voltage of the array's nominal domain (V).
        nominal_v: f64,
        /// Per-bank voltage offsets (V), cycled over the bank index when
        /// shorter than the bank count.
        bank_offsets: Vec<f64>,
    },
}

impl FaultModel {
    /// A short token naming the variant (diagnostics and display).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultModel::Iid { .. } => "iid",
            FaultModel::Burst { .. } => "burst",
            FaultModel::ColumnCorrelated { .. } => "column",
            FaultModel::PerBankVoltage { .. } => "bank-voltage",
        }
    }

    /// Checks the parameters, returning a message naming the first
    /// problem.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} {p} must be a probability in [0, 1]"))
            }
        };
        match self {
            FaultModel::Iid { ber } => prob("ber", *ber),
            FaultModel::Burst { ber, mean_run_len } => {
                prob("ber", *ber)?;
                if !(mean_run_len.is_finite() && *mean_run_len >= 1.0) {
                    return Err(format!("mean_run_len {mean_run_len} must be at least 1"));
                }
                Ok(())
            }
            FaultModel::ColumnCorrelated { ber, column_weight } => {
                prob("ber", *ber)?;
                prob("column_weight", *column_weight)
            }
            FaultModel::PerBankVoltage {
                nominal_v,
                bank_offsets,
            } => {
                if !(nominal_v.is_finite() && *nominal_v > 0.0) {
                    return Err(format!("nominal_v {nominal_v} must be positive"));
                }
                if bank_offsets.is_empty() {
                    return Err("bank_offsets must not be empty".into());
                }
                if let Some(bad) = bank_offsets.iter().find(|o| !o.is_finite()) {
                    return Err(format!("bank offset {bad} must be finite"));
                }
                Ok(())
            }
        }
    }

    /// Redraws `map` in place according to this model, deterministically
    /// from `seed`.
    ///
    /// `geometry` supplies the banking (its word count must match the
    /// map's; the map may be wider than the geometry's word width, as the
    /// campaigns' shared 22-bit maps are). `ber_model` maps effective
    /// voltages to BERs — only [`FaultModel::PerBankVoltage`] consults it.
    ///
    /// # Panics
    ///
    /// Panics when [`FaultModel::validate`] rejects the parameters or the
    /// geometry's word count differs from the map's.
    pub fn arm(&self, map: &mut FaultMap, geometry: &MemGeometry, ber_model: &BerModel, seed: u64) {
        self.validate()
            .unwrap_or_else(|e| panic!("fault model: {e}"));
        assert_eq!(
            geometry.words(),
            map.words(),
            "geometry and fault map must cover the same words"
        );
        match self {
            FaultModel::Iid { ber } => map.regenerate(*ber, seed),
            FaultModel::Burst { ber, mean_run_len } => {
                arm_burst(map, *ber, *mean_run_len, seed);
            }
            FaultModel::ColumnCorrelated { ber, column_weight } => {
                arm_column(map, geometry, *ber, *column_weight, seed);
            }
            FaultModel::PerBankVoltage {
                nominal_v,
                bank_offsets,
            } => {
                arm_per_bank(map, geometry, ber_model, *nominal_v, bank_offsets, seed);
            }
        }
    }

    /// The model's expected mean cell failure probability (exact for
    /// `Iid`/`Burst`/`ColumnCorrelated`; the bank-offset average of the
    /// per-bank BERs for `PerBankVoltage`, assuming the offsets tile the
    /// banks evenly).
    pub fn mean_ber(&self, ber_model: &BerModel) -> f64 {
        match self {
            FaultModel::Iid { ber }
            | FaultModel::Burst { ber, .. }
            | FaultModel::ColumnCorrelated { ber, .. } => *ber,
            FaultModel::PerBankVoltage {
                nominal_v,
                bank_offsets,
            } => {
                let sum: f64 = bank_offsets
                    .iter()
                    .map(|dv| ber_model.ber(nominal_v + dv))
                    .sum();
                sum / bank_offsets.len() as f64
            }
        }
    }
}

/// Draws a uniform in `[f64::MIN_POSITIVE, 1.0)` — the open-interval
/// variate the geometric inversions below need (matches
/// [`FaultMap::regenerate`]'s convention).
fn open_unit(rng: &mut StdRng) -> f64 {
    rng.gen_range(f64::MIN_POSITIVE..1.0)
}

/// Geometric gap to the next event at per-cell probability `p`
/// (`log1m = ln(1 - p)` precomputed): `floor(ln(U) / ln(1 - p))` cells.
fn geometric_gap(rng: &mut StdRng, log1m: f64) -> u64 {
    (open_unit(rng).ln() / log1m).floor() as u64
}

/// Draws a 50/50 stuck polarity — the one place the models' polarity
/// stream convention (`gen::<bool>()`, true = stuck-at-1) lives, matching
/// [`FaultMap::regenerate`].
fn draw_stuck(rng: &mut StdRng) -> StuckAt {
    if rng.gen::<bool>() {
        StuckAt::One
    } else {
        StuckAt::Zero
    }
}

/// Injects cell index `pos` (word-major: `word * width + bit`) with a
/// 50/50 polarity.
fn inject_cell(map: &mut FaultMap, rng: &mut StdRng, pos: u64) {
    let width = u64::from(map.width());
    let stuck = draw_stuck(rng);
    map.inject((pos / width) as usize, (pos % width) as u32, stuck);
}

/// Skip-samples an i.i.d. Bernoulli process at probability `p` over
/// `total` cells, calling `visit` on each hit cell — generation cost is
/// proportional to the number of faults, as in [`FaultMap::regenerate`].
fn skip_sample(
    rng: &mut StdRng,
    total: u64,
    p: f64,
    mut visit: impl FnMut(&mut StdRng, u64),
) -> bool {
    if p <= 0.0 || total == 0 {
        return true;
    }
    if p >= 1.0 {
        return false; // caller handles the saturated case
    }
    let log1m = (1.0 - p).ln();
    let mut pos: u64 = 0;
    loop {
        let gap = geometric_gap(rng, log1m);
        pos = match pos.checked_add(gap) {
            Some(p) => p,
            None => break,
        };
        if pos >= total {
            break;
        }
        visit(rng, pos);
        pos += 1;
        if pos >= total {
            break;
        }
    }
    true
}

/// Sticks every cell of `map` (the saturated `ber >= 1` case), with the
/// same polarity stream [`FaultMap::regenerate`] uses.
fn saturate(map: &mut FaultMap, rng: &mut StdRng) {
    for w in 0..map.words() {
        for b in 0..map.width() {
            let stuck = draw_stuck(rng);
            map.inject(w, b, stuck);
        }
    }
}

fn arm_burst(map: &mut FaultMap, ber: f64, mean_run_len: f64, seed: u64) {
    map.clear();
    let total = map.words() as u64 * u64::from(map.width());
    if ber == 0.0 || total == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if ber >= 1.0 {
        saturate(map, &mut rng);
        return;
    }
    // Alternating-renewal process: gaps between bursts are geometric at
    // `p_start` (support {0, 1, …}, mean (1-p)/p), bursts are geometric
    // runs with mean L. The long-run stuck fraction is
    // L·p / (L·p + 1 - p); solving it for `ber` gives
    // p_start = ber / (L·(1 - ber) + ber), exact for every L >= 1.
    let p_start = (ber / (mean_run_len * (1.0 - ber) + ber)).min(1.0);
    let run_log1m = if mean_run_len > 1.0 {
        (1.0 - 1.0 / mean_run_len).ln()
    } else {
        f64::NEG_INFINITY // run length pinned to 1
    };
    let mut pos: u64 = 0;
    loop {
        if p_start < 1.0 {
            let gap = geometric_gap(&mut rng, (1.0 - p_start).ln());
            pos = match pos.checked_add(gap) {
                Some(p) => p,
                None => return,
            };
        }
        if pos >= total {
            return;
        }
        let run_len = if run_log1m.is_finite() {
            1 + geometric_gap(&mut rng, run_log1m)
        } else {
            1
        };
        let end = pos.saturating_add(run_len).min(total);
        while pos < end {
            inject_cell(map, &mut rng, pos);
            pos += 1;
        }
        if pos >= total {
            return;
        }
    }
}

fn arm_column(map: &mut FaultMap, geometry: &MemGeometry, ber: f64, weight: f64, seed: u64) {
    map.clear();
    let words = map.words();
    let width = map.width();
    let total = words as u64 * u64::from(width);
    if ber == 0.0 || total == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Background: the un-concentrated share of the budget, i.i.d.
    let background = ber * (1.0 - weight);
    if !skip_sample(&mut rng, total, background, |rng, pos| {
        inject_cell(map, rng, pos)
    }) {
        saturate(map, &mut rng);
        return;
    }
    // Weak columns: one bit lane per bank, shared by every word the bank
    // serves (low-order interleaving: bank b serves words b, b+banks, …).
    // Spreading `weight * ber * bank_cells` expected faults over the
    // column's `rows` cells amplifies the per-cell rate by the width.
    let banks = geometry.banks();
    let rows = words / banks;
    let p_col = (ber * weight * f64::from(width)).min(1.0);
    for bank in 0..banks {
        let lane = rng.gen_range(0..width);
        if p_col >= 1.0 {
            for row in 0..rows {
                let stuck = draw_stuck(&mut rng);
                map.inject(bank + row * banks, lane, stuck);
            }
            continue;
        }
        skip_sample(&mut rng, rows as u64, p_col, |rng, row| {
            let stuck = draw_stuck(rng);
            map.inject(bank + (row as usize) * banks, lane, stuck);
        });
    }
}

fn arm_per_bank(
    map: &mut FaultMap,
    geometry: &MemGeometry,
    ber_model: &BerModel,
    nominal_v: f64,
    offsets: &[f64],
    seed: u64,
) {
    map.clear();
    let words = map.words();
    let width = map.width();
    if words == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let banks = geometry.banks();
    let rows = words / banks;
    let bank_cells = rows as u64 * u64::from(width);
    for bank in 0..banks {
        let ber = ber_model.ber(nominal_v + offsets[bank % offsets.len()]);
        let full = !skip_sample(&mut rng, bank_cells, ber, |rng, cell| {
            let row = (cell / u64::from(width)) as usize;
            let bit = (cell % u64::from(width)) as u32;
            let stuck = draw_stuck(rng);
            map.inject(bank + row * banks, bit, stuck);
        });
        if !full {
            continue;
        }
        for row in 0..rows {
            for bit in 0..width {
                let stuck = draw_stuck(&mut rng);
                map.inject(bank + row * banks, bit, stuck);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry(words: usize) -> MemGeometry {
        MemGeometry::new(words, 16, 16)
    }

    fn armed(model: &FaultModel, words: usize, width: u32, seed: u64) -> FaultMap {
        let mut map = FaultMap::empty(words, width);
        model.arm(&mut map, &geometry(words), &BerModel::date16(), seed);
        map
    }

    /// Sorted word-major cell positions of every stuck cell.
    fn positions(map: &FaultMap) -> Vec<u64> {
        map.iter_faults()
            .map(|(w, b, _)| w as u64 * u64::from(map.width()) + u64::from(b))
            .collect()
    }

    /// Mean length of maximal runs of consecutive stuck cells.
    fn mean_run_len(map: &FaultMap) -> f64 {
        let pos = positions(map);
        if pos.is_empty() {
            return 0.0;
        }
        let mut runs = 1usize;
        for pair in pos.windows(2) {
            if pair[1] != pair[0] + 1 {
                runs += 1;
            }
        }
        pos.len() as f64 / runs as f64
    }

    #[test]
    fn iid_matches_regenerate_bit_for_bit() {
        // Exhaustive over a grid of (ber, seed) on a small array,
        // including the degenerate endpoints.
        for &ber in &[0.0, 1e-4, 1e-3, 0.05, 0.5, 1.0] {
            for seed in 0..64 {
                let armed = armed(&FaultModel::Iid { ber }, 64, 22, seed);
                let direct = FaultMap::generate(64, 22, ber, seed);
                assert_eq!(armed, direct, "ber={ber} seed={seed}");
            }
        }
    }

    #[test]
    fn every_model_is_deterministic_in_seed_and_params() {
        let models = [
            FaultModel::Iid { ber: 1e-3 },
            FaultModel::Burst {
                ber: 1e-3,
                mean_run_len: 8.0,
            },
            FaultModel::ColumnCorrelated {
                ber: 1e-3,
                column_weight: 0.7,
            },
            FaultModel::PerBankVoltage {
                nominal_v: 0.55,
                bank_offsets: vec![-0.05, 0.0, 0.05],
            },
        ];
        for model in &models {
            let a = armed(model, 4096, 22, 9);
            let b = armed(model, 4096, 22, 9);
            let c = armed(model, 4096, 22, 10);
            assert_eq!(a, b, "{}", model.kind());
            assert_ne!(a, c, "{} must vary with the seed", model.kind());
        }
    }

    #[test]
    fn re_arm_reuses_the_map_without_stale_faults() {
        // A dirty map re-armed in place must equal a fresh draw — the
        // campaign workers' allocation-free contract.
        let model = FaultModel::Burst {
            ber: 2e-3,
            mean_run_len: 4.0,
        };
        let mut reused = armed(
            &FaultModel::ColumnCorrelated {
                ber: 0.05,
                column_weight: 1.0,
            },
            2048,
            22,
            1,
        );
        model.arm(&mut reused, &geometry(2048), &BerModel::date16(), 33);
        assert_eq!(reused, armed(&model, 2048, 22, 33));
        assert_eq!(reused.words(), 2048);
        assert_eq!(reused.width(), 22);
    }

    #[test]
    fn burst_hits_its_target_mean_ber() {
        let (words, width, ber) = (262_144usize, 16u32, 5e-3);
        let map = armed(
            &FaultModel::Burst {
                ber,
                mean_run_len: 8.0,
            },
            words,
            width,
            77,
        );
        let expected = words as f64 * f64::from(width) * ber;
        let got = map.fault_count() as f64;
        // Burst counts have ~L× the variance of binomial; 20% is > 6σ here.
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn burst_clusters_along_word_order() {
        let iid = armed(&FaultModel::Iid { ber: 2e-3 }, 65_536, 16, 5);
        let burst = armed(
            &FaultModel::Burst {
                ber: 2e-3,
                mean_run_len: 8.0,
            },
            65_536,
            16,
            5,
        );
        let iid_runs = mean_run_len(&iid);
        let burst_runs = mean_run_len(&burst);
        assert!(
            burst_runs > 4.0 * iid_runs,
            "burst runs {burst_runs} must dwarf iid runs {iid_runs}"
        );
        assert!(
            (burst_runs - 8.0).abs() < 2.5,
            "mean run length {burst_runs} should sit near the parameter 8"
        );
    }

    #[test]
    fn column_model_concentrates_on_one_lane_per_bank() {
        let (words, width, ber, weight) = (16_384usize, 22u32, 2e-3, 0.8);
        let map = armed(
            &FaultModel::ColumnCorrelated {
                ber,
                column_weight: weight,
            },
            words,
            width,
            3,
        );
        // Overall budget still lands near ber.
        let expected = words as f64 * f64::from(width) * ber;
        let got = map.fault_count() as f64;
        assert!(
            (got - expected).abs() < 0.25 * expected,
            "got {got}, expected {expected}"
        );
        // Per bank, one lane carries the concentrated share: its count
        // dwarfs the mean over the other lanes.
        let banks = 16usize;
        let mut lane_counts = vec![vec![0usize; width as usize]; banks];
        for (w, b, _) in map.iter_faults() {
            lane_counts[w % banks][b as usize] += 1;
        }
        for (bank, counts) in lane_counts.iter().enumerate() {
            let max = *counts.iter().max().unwrap();
            let rest: usize = counts.iter().sum::<usize>() - max;
            let rest_mean = rest as f64 / (width as f64 - 1.0);
            assert!(
                max as f64 > 8.0 * rest_mean.max(0.5),
                "bank {bank}: weak column {max} vs background mean {rest_mean}"
            );
        }
    }

    #[test]
    fn per_bank_voltage_tracks_the_ber_gradient() {
        // Offsets cycle [-0.05, +0.05] over 16 banks: even banks run
        // 0.05 V lower, so the date16 model gives them ~4.5× the BER.
        let model = FaultModel::PerBankVoltage {
            nominal_v: 0.55,
            bank_offsets: vec![-0.05, 0.05],
        };
        let map = armed(&model, 65_536, 22, 21);
        let mut low_v = 0usize; // even banks (offset -0.05)
        let mut high_v = 0usize;
        for (w, _, _) in map.iter_faults() {
            if w % 2 == 0 {
                low_v += 1;
            } else {
                high_v += 1;
            }
        }
        assert!(
            low_v > 2 * high_v,
            "banks at lower voltage must fail more: {low_v} vs {high_v}"
        );
        // And the aggregate stays near the offset-averaged BER.
        let expected = 65_536.0 * 22.0 * model.mean_ber(&BerModel::date16());
        let got = map.fault_count() as f64;
        assert!(
            (got - expected).abs() < 0.2 * expected,
            "got {got}, expected {expected}"
        );
    }

    #[test]
    fn zero_ber_clears_every_model() {
        for model in [
            FaultModel::Iid { ber: 0.0 },
            FaultModel::Burst {
                ber: 0.0,
                mean_run_len: 8.0,
            },
            FaultModel::ColumnCorrelated {
                ber: 0.0,
                column_weight: 0.5,
            },
        ] {
            let map = armed(&model, 1024, 16, 1);
            assert_eq!(map.fault_count(), 0, "{}", model.kind());
        }
    }

    #[test]
    fn high_ber_short_bursts_do_not_saturate() {
        // The renewal start rate is exact for every L >= 1: at the BER
        // clamp ceiling (0.5) with unit runs, half the cells stick — the
        // naive ber/(L·(1-ber)) rate would have stuck all of them.
        let map = armed(
            &FaultModel::Burst {
                ber: 0.5,
                mean_run_len: 1.0,
            },
            4096,
            16,
            11,
        );
        let total = 4096.0 * 16.0;
        let frac = map.fault_count() as f64 / total;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "stuck fraction {frac} should sit near the 0.5 target"
        );
    }

    #[test]
    fn saturated_burst_sticks_everything() {
        let map = armed(
            &FaultModel::Burst {
                ber: 1.0,
                mean_run_len: 4.0,
            },
            64,
            16,
            1,
        );
        assert_eq!(map.fault_count(), 64 * 16);
    }

    #[test]
    fn validation_names_the_offending_parameter() {
        let cases: [(FaultModel, &str); 4] = [
            (FaultModel::Iid { ber: 1.5 }, "ber"),
            (
                FaultModel::Burst {
                    ber: 0.1,
                    mean_run_len: 0.5,
                },
                "mean_run_len",
            ),
            (
                FaultModel::ColumnCorrelated {
                    ber: 0.1,
                    column_weight: -0.1,
                },
                "column_weight",
            ),
            (
                FaultModel::PerBankVoltage {
                    nominal_v: 0.6,
                    bank_offsets: vec![],
                },
                "bank_offsets",
            ),
        ];
        for (model, needle) in cases {
            let err = model.validate().unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    #[should_panic(expected = "same words")]
    fn arm_rejects_mismatched_geometry() {
        let mut map = FaultMap::empty(64, 16);
        FaultModel::Iid { ber: 0.0 }.arm(
            &mut map,
            &MemGeometry::new(128, 16, 16),
            &BerModel::date16(),
            0,
        );
    }
}
