//! Logical→physical address scrambling.

/// A bijective permutation of word addresses.
///
/// The paper notes that a fresh random fault-location map per run "can be
/// generated even in the presence of stuck-at faults by adding a small logic
/// to randomize the mapping between logical and physical addresses and bit
/// locations" (§V). This type is that small logic: a keyed bijection over
/// `0..words` built from XOR-folding and odd-multiplier mixing over the
/// next power of two, with cycle-walking to stay inside the array bounds.
///
/// Applying a different scrambler key to a *fixed* physical fault map is
/// equivalent to drawing a fresh logical fault map, which is how a real
/// device would re-randomize wear without re-manufacturing its defects.
///
/// ```
/// use dream_mem::AddressScrambler;
/// let s = AddressScrambler::new(1000, 0xBEEF);
/// let mut seen = vec![false; 1000];
/// for a in 0..1000 {
///     let p = s.to_physical(a);
///     assert!(!seen[p], "collision");
///     seen[p] = true;
///     assert_eq!(s.to_logical(p), a);
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressScrambler {
    words: usize,
    mask: u64,
    xor_key: u64,
    mul_key: u64,
    inv_mul_key: u64,
    rot: u32,
    bits: u32,
}

impl AddressScrambler {
    /// Creates a scrambler for an array of `words` addresses, keyed by
    /// `key`.
    ///
    /// # Panics
    ///
    /// Panics if `words` is zero.
    pub fn new(words: usize, key: u64) -> Self {
        assert!(words > 0, "cannot scramble an empty array");
        let bits = (words.max(2) as u64).next_power_of_two().trailing_zeros();
        let mask = (1u64 << bits) - 1;
        // Derive sub-keys with a splitmix64 step so nearby keys diverge.
        let xor_key = splitmix64(key) & mask;
        // Any odd multiplier is invertible modulo a power of two.
        let mul_key = (splitmix64(key ^ 0x9E37_79B9_7F4A_7C15) | 1) & mask | 1;
        let inv_mul_key = mod_inverse_pow2(mul_key, bits);
        let rot = (splitmix64(key.wrapping_add(1)) % u64::from(bits.max(1))) as u32;
        AddressScrambler {
            words,
            mask,
            xor_key,
            mul_key,
            inv_mul_key,
            rot,
            bits,
        }
    }

    /// An identity scrambler (useful as a default).
    pub fn identity(words: usize) -> Self {
        let mut s = AddressScrambler::new(words, 0);
        s.xor_key = 0;
        s.mul_key = 1;
        s.inv_mul_key = 1;
        s.rot = 0;
        s
    }

    /// Number of addresses covered.
    pub fn words(&self) -> usize {
        self.words
    }

    /// True when this scrambler maps every address to itself.
    ///
    /// Storage layers cache this to skip the permutation on the hot
    /// per-access path: campaigns that do not re-randomize (the default
    /// after a trial re-arm) pay nothing for the scrambling capability.
    pub fn is_identity(&self) -> bool {
        self.xor_key == 0 && self.mul_key == 1 && self.rot == 0
    }

    fn permute_pow2(&self, addr: u64) -> u64 {
        let x = (addr ^ self.xor_key) & self.mask;
        let x = x.wrapping_mul(self.mul_key) & self.mask;
        rotate_left_masked(x, self.rot, self.bits)
    }

    fn unpermute_pow2(&self, addr: u64) -> u64 {
        let x = rotate_right_masked(addr, self.rot, self.bits);
        let x = x.wrapping_mul(self.inv_mul_key) & self.mask;
        (x ^ self.xor_key) & self.mask
    }

    /// Maps a logical address to its physical location.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= words`.
    pub fn to_physical(&self, addr: usize) -> usize {
        assert!(addr < self.words, "address out of range");
        // Cycle-walk: re-apply the power-of-two permutation until the result
        // lands inside the (possibly non-power-of-two) array.
        let mut x = addr as u64;
        loop {
            x = self.permute_pow2(x);
            if (x as usize) < self.words {
                return x as usize;
            }
        }
    }

    /// Maps a physical location back to its logical address.
    ///
    /// # Panics
    ///
    /// Panics if `addr >= words`.
    pub fn to_logical(&self, addr: usize) -> usize {
        assert!(addr < self.words, "address out of range");
        let mut x = addr as u64;
        loop {
            x = self.unpermute_pow2(x);
            if (x as usize) < self.words {
                return x as usize;
            }
        }
    }
}

fn rotate_left_masked(x: u64, rot: u32, bits: u32) -> u64 {
    if rot == 0 || bits == 0 {
        return x;
    }
    let mask = (1u64 << bits) - 1;
    ((x << rot) | (x >> (bits - rot))) & mask
}

fn rotate_right_masked(x: u64, rot: u32, bits: u32) -> u64 {
    if rot == 0 || bits == 0 {
        return x;
    }
    let mask = (1u64 << bits) - 1;
    ((x >> rot) | (x << (bits - rot))) & mask
}

/// Multiplicative inverse of an odd number modulo 2^bits (Newton iteration).
fn mod_inverse_pow2(a: u64, bits: u32) -> u64 {
    debug_assert!(a % 2 == 1);
    let mask = if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let mut inv = 1u64;
    // Five Newton steps give 64 bits of precision.
    for _ in 0..6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(inv)));
    }
    inv & mask
}

/// splitmix64 — the standard 64-bit mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijective_on_power_of_two() {
        let s = AddressScrambler::new(256, 0x1234);
        let mut seen = [false; 256];
        for a in 0..256 {
            let p = s.to_physical(a);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn bijective_on_awkward_size() {
        let s = AddressScrambler::new(1000, 0xDEAD_BEEF);
        let mut seen = vec![false; 1000];
        for a in 0..1000 {
            let p = s.to_physical(a);
            assert!(!seen[p]);
            seen[p] = true;
            assert_eq!(s.to_logical(p), a);
        }
    }

    #[test]
    fn identity_is_identity() {
        let s = AddressScrambler::identity(100);
        for a in 0..100 {
            assert_eq!(s.to_physical(a), a);
            assert_eq!(s.to_logical(a), a);
        }
    }

    #[test]
    fn different_keys_differ() {
        let a = AddressScrambler::new(4096, 1);
        let b = AddressScrambler::new(4096, 2);
        let moved = (0..4096)
            .filter(|&x| a.to_physical(x) != b.to_physical(x))
            .count();
        assert!(
            moved > 3000,
            "keys should decorrelate mappings, moved={moved}"
        );
    }

    #[test]
    fn inverse_multiplier_is_correct() {
        for a in [1u64, 3, 5, 0xDEAD_BEE1, 0x7FFF_FFFF] {
            let inv = mod_inverse_pow2(a, 32);
            assert_eq!(a.wrapping_mul(inv) & 0xFFFF_FFFF, 1);
        }
    }

    #[test]
    fn single_word_array_works() {
        let s = AddressScrambler::new(1, 77);
        assert_eq!(s.to_physical(0), 0);
        assert_eq!(s.to_logical(0), 0);
    }
}
