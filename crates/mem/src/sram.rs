//! The faulty word array.

use crate::{AddressScrambler, FaultMap, MemGeometry};

/// A bit-accurate SRAM array with a stuck-at fault overlay.
///
/// Writes record the *true* bits; reads return the bits as seen through the
/// [`FaultMap`], i.e. stuck cells return their stuck value regardless of
/// what was written. This mirrors real silicon: a stuck-at cell physically
/// accepts the write but cannot hold the value.
///
/// An optional [`AddressScrambler`] remaps logical word addresses before the
/// array is indexed, modelling the paper's logical/physical randomization
/// logic (§V).
///
/// Access counting is left to higher layers (`dream-core`'s protected
/// memory and `dream-soc`'s ports) so this type stays a pure storage model.
///
/// ```
/// use dream_mem::{FaultMap, FaultySram, MemGeometry, StuckAt};
/// let g = MemGeometry::new(8, 16, 1);
/// let mut map = FaultMap::empty(8, 16);
/// map.inject(3, 0, StuckAt::One);
/// let mut sram = FaultySram::with_faults(g, map);
/// sram.write(3, 0x0000);
/// assert_eq!(sram.read(3), 0x0001); // LSB stuck at one
/// assert_eq!(sram.read_raw(3), 0x0000); // the latch itself holds the write
/// ```
#[derive(Clone, Debug)]
pub struct FaultySram {
    geometry: MemGeometry,
    cells: Vec<u32>,
    faults: FaultMap,
    scrambler: AddressScrambler,
    /// Cached `scrambler.is_identity()`: the overwhelmingly common case,
    /// checked once per scrambler install instead of once per access.
    identity_map: bool,
    width_mask: u32,
}

impl FaultySram {
    /// Creates a fault-free array of the given geometry.
    pub fn new(geometry: MemGeometry) -> Self {
        Self::with_faults(
            geometry,
            FaultMap::empty(geometry.words(), geometry.bits_per_word()),
        )
    }

    /// Creates an array with the given fault overlay.
    ///
    /// # Panics
    ///
    /// Panics if the fault map's dimensions do not match the geometry.
    pub fn with_faults(geometry: MemGeometry, faults: FaultMap) -> Self {
        assert_eq!(faults.words(), geometry.words(), "fault map word count");
        assert_eq!(
            faults.width(),
            geometry.bits_per_word(),
            "fault map word width"
        );
        let width = geometry.bits_per_word();
        let width_mask = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        FaultySram {
            geometry,
            cells: vec![0; geometry.words()],
            faults,
            scrambler: AddressScrambler::identity(geometry.words()),
            identity_map: true,
            width_mask,
        }
    }

    /// Installs an address scrambler (logical→physical remapping).
    pub fn set_scrambler(&mut self, scrambler: AddressScrambler) {
        assert_eq!(
            scrambler.words(),
            self.geometry.words(),
            "scrambler must cover the whole array"
        );
        self.identity_map = scrambler.is_identity();
        self.scrambler = scrambler;
    }

    /// Logical→physical translation with the identity fast path.
    #[inline]
    fn phys(&self, addr: usize) -> usize {
        if self.identity_map {
            addr
        } else {
            self.scrambler.to_physical(addr)
        }
    }

    /// The array geometry.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// The fault overlay.
    pub fn fault_map(&self) -> &FaultMap {
        &self.faults
    }

    /// Replaces the fault overlay (used between campaign runs to install a
    /// freshly drawn map while keeping the array contents).
    ///
    /// # Panics
    ///
    /// Panics if the new map's dimensions do not match the geometry.
    pub fn set_fault_map(&mut self, faults: FaultMap) {
        assert_eq!(faults.words(), self.geometry.words());
        assert_eq!(faults.width(), self.geometry.bits_per_word());
        self.faults = faults;
    }

    /// Replaces the fault overlay with a width-narrowed copy of `src`
    /// without reallocating — the campaign executor's per-trial re-arm
    /// path (`src` may be wider than this array, as with the shared
    /// widest-codeword maps).
    ///
    /// # Panics
    ///
    /// Panics if `src` covers a different word count or is narrower than
    /// the array.
    pub fn reload_faults(&mut self, src: &FaultMap) {
        self.faults.copy_narrowed_from(src);
    }

    /// Writes `bits` to logical address `addr` (bits above the word width
    /// are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write(&mut self, addr: usize, bits: u32) {
        let phys = self.phys(addr);
        self.cells[phys] = bits & self.width_mask;
    }

    /// Reads logical address `addr` through the fault overlay.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn read(&self, addr: usize) -> u32 {
        let phys = self.phys(addr);
        self.faults.apply(phys, self.cells[phys])
    }

    /// Reads the latched bits without the fault overlay (debug/oracle view;
    /// no physical read port behaves like this on degraded silicon).
    #[inline]
    pub fn read_raw(&self, addr: usize) -> u32 {
        self.cells[self.phys(addr)]
    }

    /// Reads `out.len()` consecutive logical words starting at `base`
    /// through the fault overlay.
    ///
    /// Equivalent to `out.len()` calls of [`FaultySram::read`], but the
    /// bounds and the scrambler identity check are paid once per block
    /// instead of once per word — the streaming path for DSP windows.
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the array.
    pub fn read_block(&self, base: usize, out: &mut [u32]) {
        let end = base
            .checked_add(out.len())
            .expect("block end overflows usize");
        assert!(end <= self.geometry.words(), "block out of range");
        if self.identity_map {
            for (i, slot) in out.iter_mut().enumerate() {
                let phys = base + i;
                *slot = self.faults.apply(phys, self.cells[phys]);
            }
        } else {
            for (i, slot) in out.iter_mut().enumerate() {
                let phys = self.scrambler.to_physical(base + i);
                *slot = self.faults.apply(phys, self.cells[phys]);
            }
        }
    }

    /// Writes `vals` to consecutive logical addresses starting at `base`
    /// (the block counterpart of [`FaultySram::write`]).
    ///
    /// # Panics
    ///
    /// Panics if the region overruns the array.
    pub fn write_block(&mut self, base: usize, vals: &[u32]) {
        let end = base
            .checked_add(vals.len())
            .expect("block end overflows usize");
        assert!(end <= self.geometry.words(), "block out of range");
        if self.identity_map {
            for (cell, &v) in self.cells[base..end].iter_mut().zip(vals) {
                *cell = v & self.width_mask;
            }
        } else {
            for (i, &v) in vals.iter().enumerate() {
                let phys = self.scrambler.to_physical(base + i);
                self.cells[phys] = v & self.width_mask;
            }
        }
    }

    /// Reads logical address `addr` through a batch of per-trial fault
    /// overlays instead of this array's own: writes `out.len()` bit planes
    /// where bit *l* of `out[p]` is bit *p* of the word trial lane *l*
    /// would read (see [`crate::BatchFaultPlanes::overlay`]).
    ///
    /// The latch contents come from this array (scrambling included);
    /// `planes` must already be resolved to logical addresses
    /// ([`crate::BatchFaultPlanes::add_lane`] does that), so this array is
    /// normally the batch's *fault-free* clean-pass storage.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range for either side or `out` is wider
    /// than the planes.
    #[inline]
    pub fn read_batch(&self, addr: usize, planes: &crate::BatchFaultPlanes, out: &mut [u64]) {
        planes.overlay(addr, self.read_raw(addr), out);
    }

    /// True when no stuck cell touches the logical word `addr` — the read
    /// of such a word returns exactly what was written, which is what the
    /// protected-memory clean-word fast path keys on.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn is_word_clean(&self, addr: usize) -> bool {
        self.faults.stuck_mask(self.phys(addr)) == 0
    }

    /// The stuck-bit lanes seen by the logical word `addr` (the fault map
    /// is physical; this resolves the scrambling for callers).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn stuck_mask_at(&self, addr: usize) -> u32 {
        self.faults.stuck_mask(self.phys(addr))
    }

    /// Number of stuck bits affecting the logical word `addr`.
    pub fn stuck_bits_at(&self, addr: usize) -> u32 {
        self.stuck_mask_at(addr).count_ones()
    }

    /// Fills the whole array with `bits` (e.g. to model a memory cleared at
    /// boot).
    pub fn fill(&mut self, bits: u32) {
        let v = bits & self.width_mask;
        self.cells.iter_mut().for_each(|c| *c = v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StuckAt;

    fn small() -> MemGeometry {
        MemGeometry::new(16, 16, 1)
    }

    #[test]
    fn clean_memory_round_trips() {
        let mut sram = FaultySram::new(small());
        for a in 0..16 {
            sram.write(a, (a as u32) * 0x111);
        }
        for a in 0..16 {
            assert_eq!(sram.read(a), (a as u32) * 0x111);
        }
    }

    #[test]
    fn stuck_bits_corrupt_reads_not_latches() {
        let mut map = FaultMap::empty(16, 16);
        map.inject(5, 15, StuckAt::Zero);
        let mut sram = FaultySram::with_faults(small(), map);
        sram.write(5, 0xFFFF);
        assert_eq!(sram.read(5), 0x7FFF);
        assert_eq!(sram.read_raw(5), 0xFFFF);
        assert_eq!(sram.stuck_bits_at(5), 1);
    }

    #[test]
    fn writes_mask_to_width() {
        let g = MemGeometry::new(4, 5, 1);
        let mut sram = FaultySram::new(g);
        sram.write(0, 0xFFFF_FFFF);
        assert_eq!(sram.read(0), 0b1_1111);
    }

    #[test]
    fn scrambler_moves_fault_to_other_logical_address() {
        let mut map = FaultMap::empty(16, 16);
        map.inject(0, 0, StuckAt::One);
        let mut sram = FaultySram::with_faults(small(), map);
        sram.set_scrambler(AddressScrambler::new(16, 0x5A5A));
        // Exactly one logical address now sees the stuck bit.
        let mut hit = Vec::new();
        for a in 0..16 {
            sram.write(a, 0);
            if sram.read(a) != 0 {
                hit.push(a);
            }
        }
        assert_eq!(hit.len(), 1);
    }

    #[test]
    fn fill_initializes_every_word() {
        let mut sram = FaultySram::new(small());
        sram.fill(0xABCD);
        for a in 0..16 {
            assert_eq!(sram.read(a), 0xABCD);
        }
    }

    #[test]
    #[should_panic(expected = "fault map word width")]
    fn mismatched_fault_width_rejected() {
        let _ = FaultySram::with_faults(small(), FaultMap::empty(16, 22));
    }

    #[test]
    fn clean_word_accessors_resolve_scrambling() {
        let mut map = FaultMap::empty(16, 16);
        map.inject(7, 3, StuckAt::One);
        let mut sram = FaultySram::with_faults(small(), map);
        assert!(!sram.is_word_clean(7));
        assert_eq!(sram.stuck_mask_at(7), 0b1000);
        assert!(sram.is_word_clean(6));
        // After scrambling, exactly one *logical* address sees the fault,
        // and the accessors must agree with the read path about which.
        sram.set_scrambler(AddressScrambler::new(16, 0xFEED));
        let dirty: Vec<usize> = (0..16).filter(|&a| !sram.is_word_clean(a)).collect();
        assert_eq!(dirty.len(), 1);
        for a in 0..16 {
            sram.write(a, 0);
            assert_eq!(sram.read(a) != 0, !sram.is_word_clean(a), "addr {a}");
            assert_eq!(sram.stuck_mask_at(a) == 0, sram.is_word_clean(a));
        }
    }

    #[test]
    fn block_transfers_match_word_at_a_time() {
        let mut map = FaultMap::empty(16, 16);
        map.inject(4, 0, StuckAt::One);
        map.inject(9, 15, StuckAt::Zero);
        for key in [None, Some(0xABCD_u64)] {
            let mut a = FaultySram::with_faults(small(), map.clone());
            let mut b = FaultySram::with_faults(small(), map.clone());
            if let Some(key) = key {
                a.set_scrambler(AddressScrambler::new(16, key));
                b.set_scrambler(AddressScrambler::new(16, key));
            }
            let vals: Vec<u32> = (0..12).map(|i| (i * 0x1111) as u32).collect();
            for (i, &v) in vals.iter().enumerate() {
                a.write(2 + i, v);
            }
            b.write_block(2, &vals);
            let word_reads: Vec<u32> = (0..12).map(|i| a.read(2 + i)).collect();
            let mut block_reads = vec![0u32; 12];
            b.read_block(2, &mut block_reads);
            assert_eq!(word_reads, block_reads, "scrambled={}", key.is_some());
        }
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn overrunning_block_rejected() {
        let sram = FaultySram::new(small());
        let mut out = vec![0u32; 4];
        sram.read_block(14, &mut out);
    }
}
