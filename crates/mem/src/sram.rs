//! The faulty word array.

use crate::{AddressScrambler, FaultMap, MemGeometry};

/// A bit-accurate SRAM array with a stuck-at fault overlay.
///
/// Writes record the *true* bits; reads return the bits as seen through the
/// [`FaultMap`], i.e. stuck cells return their stuck value regardless of
/// what was written. This mirrors real silicon: a stuck-at cell physically
/// accepts the write but cannot hold the value.
///
/// An optional [`AddressScrambler`] remaps logical word addresses before the
/// array is indexed, modelling the paper's logical/physical randomization
/// logic (§V).
///
/// Access counting is left to higher layers (`dream-core`'s protected
/// memory and `dream-soc`'s ports) so this type stays a pure storage model.
///
/// ```
/// use dream_mem::{FaultMap, FaultySram, MemGeometry, StuckAt};
/// let g = MemGeometry::new(8, 16, 1);
/// let mut map = FaultMap::empty(8, 16);
/// map.inject(3, 0, StuckAt::One);
/// let mut sram = FaultySram::with_faults(g, map);
/// sram.write(3, 0x0000);
/// assert_eq!(sram.read(3), 0x0001); // LSB stuck at one
/// assert_eq!(sram.read_raw(3), 0x0000); // the latch itself holds the write
/// ```
#[derive(Clone, Debug)]
pub struct FaultySram {
    geometry: MemGeometry,
    cells: Vec<u32>,
    faults: FaultMap,
    scrambler: AddressScrambler,
    width_mask: u32,
}

impl FaultySram {
    /// Creates a fault-free array of the given geometry.
    pub fn new(geometry: MemGeometry) -> Self {
        Self::with_faults(
            geometry,
            FaultMap::empty(geometry.words(), geometry.bits_per_word()),
        )
    }

    /// Creates an array with the given fault overlay.
    ///
    /// # Panics
    ///
    /// Panics if the fault map's dimensions do not match the geometry.
    pub fn with_faults(geometry: MemGeometry, faults: FaultMap) -> Self {
        assert_eq!(faults.words(), geometry.words(), "fault map word count");
        assert_eq!(
            faults.width(),
            geometry.bits_per_word(),
            "fault map word width"
        );
        let width = geometry.bits_per_word();
        let width_mask = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        FaultySram {
            geometry,
            cells: vec![0; geometry.words()],
            faults,
            scrambler: AddressScrambler::identity(geometry.words()),
            width_mask,
        }
    }

    /// Installs an address scrambler (logical→physical remapping).
    pub fn set_scrambler(&mut self, scrambler: AddressScrambler) {
        assert_eq!(
            scrambler.words(),
            self.geometry.words(),
            "scrambler must cover the whole array"
        );
        self.scrambler = scrambler;
    }

    /// The array geometry.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geometry
    }

    /// The fault overlay.
    pub fn fault_map(&self) -> &FaultMap {
        &self.faults
    }

    /// Replaces the fault overlay (used between campaign runs to install a
    /// freshly drawn map while keeping the array contents).
    ///
    /// # Panics
    ///
    /// Panics if the new map's dimensions do not match the geometry.
    pub fn set_fault_map(&mut self, faults: FaultMap) {
        assert_eq!(faults.words(), self.geometry.words());
        assert_eq!(faults.width(), self.geometry.bits_per_word());
        self.faults = faults;
    }

    /// Replaces the fault overlay with a width-narrowed copy of `src`
    /// without reallocating — the campaign executor's per-trial re-arm
    /// path (`src` may be wider than this array, as with the shared
    /// widest-codeword maps).
    ///
    /// # Panics
    ///
    /// Panics if `src` covers a different word count or is narrower than
    /// the array.
    pub fn reload_faults(&mut self, src: &FaultMap) {
        self.faults.copy_narrowed_from(src);
    }

    /// Writes `bits` to logical address `addr` (bits above the word width
    /// are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn write(&mut self, addr: usize, bits: u32) {
        let phys = self.scrambler.to_physical(addr);
        self.cells[phys] = bits & self.width_mask;
    }

    /// Reads logical address `addr` through the fault overlay.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn read(&self, addr: usize) -> u32 {
        let phys = self.scrambler.to_physical(addr);
        self.faults.apply(phys, self.cells[phys])
    }

    /// Reads the latched bits without the fault overlay (debug/oracle view;
    /// no physical read port behaves like this on degraded silicon).
    #[inline]
    pub fn read_raw(&self, addr: usize) -> u32 {
        self.cells[self.scrambler.to_physical(addr)]
    }

    /// Number of stuck bits affecting the logical word `addr`.
    pub fn stuck_bits_at(&self, addr: usize) -> u32 {
        self.faults
            .stuck_mask(self.scrambler.to_physical(addr))
            .count_ones()
    }

    /// Fills the whole array with `bits` (e.g. to model a memory cleared at
    /// boot).
    pub fn fill(&mut self, bits: u32) {
        let v = bits & self.width_mask;
        self.cells.iter_mut().for_each(|c| *c = v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StuckAt;

    fn small() -> MemGeometry {
        MemGeometry::new(16, 16, 1)
    }

    #[test]
    fn clean_memory_round_trips() {
        let mut sram = FaultySram::new(small());
        for a in 0..16 {
            sram.write(a, (a as u32) * 0x111);
        }
        for a in 0..16 {
            assert_eq!(sram.read(a), (a as u32) * 0x111);
        }
    }

    #[test]
    fn stuck_bits_corrupt_reads_not_latches() {
        let mut map = FaultMap::empty(16, 16);
        map.inject(5, 15, StuckAt::Zero);
        let mut sram = FaultySram::with_faults(small(), map);
        sram.write(5, 0xFFFF);
        assert_eq!(sram.read(5), 0x7FFF);
        assert_eq!(sram.read_raw(5), 0xFFFF);
        assert_eq!(sram.stuck_bits_at(5), 1);
    }

    #[test]
    fn writes_mask_to_width() {
        let g = MemGeometry::new(4, 5, 1);
        let mut sram = FaultySram::new(g);
        sram.write(0, 0xFFFF_FFFF);
        assert_eq!(sram.read(0), 0b1_1111);
    }

    #[test]
    fn scrambler_moves_fault_to_other_logical_address() {
        let mut map = FaultMap::empty(16, 16);
        map.inject(0, 0, StuckAt::One);
        let mut sram = FaultySram::with_faults(small(), map);
        sram.set_scrambler(AddressScrambler::new(16, 0x5A5A));
        // Exactly one logical address now sees the stuck bit.
        let mut hit = Vec::new();
        for a in 0..16 {
            sram.write(a, 0);
            if sram.read(a) != 0 {
                hit.push(a);
            }
        }
        assert_eq!(hit.len(), 1);
    }

    #[test]
    fn fill_initializes_every_word() {
        let mut sram = FaultySram::new(small());
        sram.fill(0xABCD);
        for a in 0..16 {
            assert_eq!(sram.read(a), 0xABCD);
        }
    }

    #[test]
    #[should_panic(expected = "fault map word width")]
    fn mismatched_fault_width_rejected() {
        let _ = FaultySram::with_faults(small(), FaultMap::empty(16, 22));
    }
}
