//! Bit-plane (lane-per-trial) fault storage for batched Monte-Carlo
//! execution.
//!
//! A Monte-Carlo campaign runs many trials of the *same* record that
//! differ only in their stuck-at fault maps. [`BatchFaultPlanes`]
//! transposes up to [`MAX_LANES`] such maps into per-address bit planes:
//! for each faulty address it stores, per code-bit position, one `u64`
//! whose bit *l* describes lane (trial) *l*. A single clean computation
//! pass can then overlay every trial's corruption in O(width) word
//! operations per read ([`BatchFaultPlanes::overlay`]) instead of
//! re-running the pass per trial.
//!
//! Fault maps are *physical*; trials may additionally scramble the
//! logical→physical address mapping. Planes are indexed by **logical**
//! address — [`BatchFaultPlanes::add_lane`] resolves each physical fault
//! location through the lane's scrambler at build time, so the overlay
//! needs no per-access translation.
//!
//! Storage is sparse: at campaign bit-error rates the overwhelming
//! majority of addresses carry no fault in any lane, so plane entries are
//! allocated only for addresses some lane actually corrupts, with a dense
//! per-address lane mask ([`BatchFaultPlanes::dirty_mask`]) deciding in
//! O(1) whether a read needs the overlay at all.

use crate::{AddressScrambler, FaultMap, StuckAt};

/// Maximum number of trials one [`BatchFaultPlanes`] (and the batched
/// execution built on it) can carry: one lane per bit of a `u64`.
pub const MAX_LANES: usize = 64;

/// Transposed stuck-at fault storage for up to [`MAX_LANES`] concurrent
/// trials (see the module docs).
///
/// ```
/// use dream_mem::{BatchFaultPlanes, FaultMap, StuckAt};
///
/// let mut map = FaultMap::empty(8, 16);
/// map.inject(3, 0, StuckAt::One);
/// let mut planes = BatchFaultPlanes::new(8, 16);
/// planes.add_lane(5, &map, None);
/// assert_eq!(planes.dirty_mask(3), 1 << 5);
/// let mut out = [0u64; 16];
/// planes.overlay(3, 0x0000, &mut out);
/// assert_eq!(out[0], 1 << 5); // lane 5 sees the stuck-at-one LSB
/// ```
#[derive(Clone, Debug)]
pub struct BatchFaultPlanes {
    words: usize,
    width: u32,
    lanes: usize,
    /// Per logical address: which lanes have at least one stuck cell here.
    dirty: Vec<u64>,
    /// Per logical address: index into the plane arena, or `CLEAN`.
    slot: Vec<u32>,
    /// Stuck-cell masks, `width` planes per allocated entry: bit *l* of
    /// plane *p* says lane *l* has a stuck cell at bit *p*.
    sm: Vec<u64>,
    /// Stuck-cell values, same layout (meaningful only under `sm`).
    sv: Vec<u64>,
}

/// Sentinel slot for addresses no lane corrupts.
const CLEAN: u32 = u32::MAX;

impl BatchFaultPlanes {
    /// Empty plane storage over `words` addresses of `width`-bit words.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 32 (the [`FaultMap`] word width
    /// bound).
    pub fn new(words: usize, width: u32) -> Self {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        BatchFaultPlanes {
            words,
            width,
            lanes: 0,
            dirty: vec![0; words],
            slot: vec![CLEAN; words],
            sm: Vec::new(),
            sv: Vec::new(),
        }
    }

    /// Removes every fault and lane, keeping the allocations — the
    /// per-batch re-arm path.
    pub fn clear(&mut self) {
        self.lanes = 0;
        self.dirty.fill(0);
        self.slot.fill(CLEAN);
        self.sm.clear();
        self.sv.clear();
    }

    /// Number of addresses covered.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Plane width in bits (code bits per word).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of lanes occupied so far (highest installed lane + 1).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    fn entry(&mut self, addr: usize) -> usize {
        assert!(addr < self.words, "address out of range");
        if self.slot[addr] == CLEAN {
            self.slot[addr] = u32::try_from(self.sm.len() / self.width as usize)
                .expect("plane arena exceeds u32 entries");
            self.sm.resize(self.sm.len() + self.width as usize, 0);
            self.sv.resize(self.sv.len() + self.width as usize, 0);
        }
        self.slot[addr] as usize * self.width as usize
    }

    /// Installs a single stuck cell for `lane` at logical `addr` / `bit` —
    /// the single-cell injection families build their batches from this.
    ///
    /// # Panics
    ///
    /// Panics if `lane` ≥ [`MAX_LANES`], `addr` is out of range, or `bit`
    /// ≥ the plane width.
    pub fn inject(&mut self, lane: usize, addr: usize, bit: u32, stuck: StuckAt) {
        assert!(lane < MAX_LANES, "lane out of range");
        assert!(bit < self.width, "bit out of range");
        self.lanes = self.lanes.max(lane + 1);
        let base = self.entry(addr);
        let l = 1u64 << lane;
        self.dirty[addr] |= l;
        self.sm[base + bit as usize] |= l;
        if stuck == StuckAt::One {
            self.sv[base + bit as usize] |= l;
        } else {
            self.sv[base + bit as usize] &= !l;
        }
    }

    /// Installs every fault of `map` as lane `lane`, resolving physical
    /// fault locations to logical addresses through `scrambler` when one
    /// is given. Faults at bit positions ≥ the plane width are skipped —
    /// the width-narrowing the scalar path applies when a shared
    /// widest-codeword map is installed into a narrower array.
    ///
    /// # Panics
    ///
    /// Panics if `lane` ≥ [`MAX_LANES`], the map covers a different word
    /// count, or the scrambler does.
    pub fn add_lane(&mut self, lane: usize, map: &FaultMap, scrambler: Option<&AddressScrambler>) {
        assert!(lane < MAX_LANES, "lane out of range");
        assert_eq!(map.words(), self.words, "fault map word count");
        if let Some(s) = scrambler {
            assert_eq!(s.words(), self.words, "scrambler word count");
        }
        self.lanes = self.lanes.max(lane + 1);
        for (word, bit, stuck) in map.iter_faults() {
            if bit >= self.width {
                continue;
            }
            let addr = match scrambler {
                Some(s) => s.to_logical(word),
                None => word,
            };
            let base = self.entry(addr);
            let l = 1u64 << lane;
            self.dirty[addr] |= l;
            self.sm[base + bit as usize] |= l;
            if stuck == StuckAt::One {
                self.sv[base + bit as usize] |= l;
            } else {
                self.sv[base + bit as usize] &= !l;
            }
        }
    }

    /// Which lanes have at least one stuck cell at logical `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[inline]
    pub fn dirty_mask(&self, addr: usize) -> u64 {
        self.dirty[addr]
    }

    /// Overlays the stored code word `code` at `addr` with every lane's
    /// stuck cells, writing `out.len()` bit planes: bit *l* of `out[p]` is
    /// bit *p* of the word lane *l* reads back. Lanes without faults at
    /// `addr` (and bits above `out.len()`) see `code` unchanged.
    ///
    /// `out` may be narrower than the plane width (a codec whose codeword
    /// is narrower than the shared fault-map width) — higher fault planes
    /// are simply not consulted, matching the scalar width-narrowing.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `out` is wider than the planes.
    #[inline]
    pub fn overlay(&self, addr: usize, code: u32, out: &mut [u64]) {
        assert!(
            out.len() <= self.width as usize,
            "overlay wider than planes"
        );
        if self.slot[addr] == CLEAN {
            for (p, slot) in out.iter_mut().enumerate() {
                *slot = 0u64.wrapping_sub(u64::from((code >> p) & 1));
            }
            return;
        }
        let base = self.slot[addr] as usize * self.width as usize;
        for (p, slot) in out.iter_mut().enumerate() {
            let broadcast = 0u64.wrapping_sub(u64::from((code >> p) & 1));
            let sm = self.sm[base + p];
            *slot = (broadcast & !sm) | (self.sv[base + p] & sm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference: the word lane `l` reads for stored `code`.
    fn lane_view(
        planes: &BatchFaultPlanes,
        addr: usize,
        code: u32,
        lane: usize,
        width: u32,
    ) -> u32 {
        let mut out = vec![0u64; width as usize];
        planes.overlay(addr, code, &mut out);
        let mut word = 0u32;
        for (p, plane) in out.iter().enumerate() {
            word |= (((plane >> lane) & 1) as u32) << p;
        }
        word
    }

    #[test]
    fn clean_addresses_broadcast_the_code() {
        let planes = BatchFaultPlanes::new(4, 16);
        assert_eq!(planes.dirty_mask(2), 0);
        for lane in [0, 17, 63] {
            assert_eq!(lane_view(&planes, 2, 0xA5C3, lane, 16), 0xA5C3);
        }
    }

    #[test]
    fn overlay_matches_fault_map_apply_per_lane() {
        let mut planes = BatchFaultPlanes::new(32, 22);
        let mut maps = Vec::new();
        for lane in 0..MAX_LANES {
            let map = FaultMap::generate(32, 22, 0.05, lane as u64 + 7);
            planes.add_lane(lane, &map, None);
            maps.push(map);
        }
        for addr in 0..32 {
            for code in [0u32, 0x3F_FFFF, 0x2A_55AA] {
                for (lane, map) in maps.iter().enumerate() {
                    assert_eq!(
                        lane_view(&planes, addr, code, lane, 22),
                        map.apply(addr, code),
                        "addr {addr} lane {lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn dirty_mask_tracks_exactly_the_faulty_lanes() {
        let mut planes = BatchFaultPlanes::new(8, 16);
        planes.inject(3, 5, 0, StuckAt::One);
        planes.inject(9, 5, 15, StuckAt::Zero);
        planes.inject(9, 6, 2, StuckAt::One);
        assert_eq!(planes.dirty_mask(5), (1 << 3) | (1 << 9));
        assert_eq!(planes.dirty_mask(6), 1 << 9);
        assert_eq!(planes.dirty_mask(0), 0);
        assert_eq!(planes.lanes(), 10);
    }

    #[test]
    fn scrambled_lanes_resolve_to_logical_addresses() {
        let mut map = FaultMap::empty(16, 16);
        map.inject(0, 4, StuckAt::One);
        let scrambler = AddressScrambler::new(16, 0x5A5A);
        let logical = scrambler.to_logical(0);
        let mut planes = BatchFaultPlanes::new(16, 16);
        planes.add_lane(0, &map, Some(&scrambler));
        assert_eq!(planes.dirty_mask(logical), 1);
        for addr in 0..16 {
            if addr != logical {
                assert_eq!(planes.dirty_mask(addr), 0, "addr {addr}");
            }
        }
        assert_eq!(lane_view(&planes, logical, 0, 0, 16), 1 << 4);
    }

    #[test]
    fn narrow_overlay_skips_high_fault_planes() {
        // A fault at bit 20 of a 22-bit map must be invisible through a
        // 16-plane overlay — the behaviour of `FaultMap::with_width(16)`.
        let mut map = FaultMap::empty(4, 22);
        map.inject(1, 20, StuckAt::One);
        map.inject(1, 3, StuckAt::One);
        let mut planes = BatchFaultPlanes::new(4, 22);
        planes.add_lane(0, &map, None);
        assert_eq!(lane_view(&planes, 1, 0, 0, 16), 1 << 3);
        let narrowed = map.with_width(16);
        assert_eq!(lane_view(&planes, 1, 0, 0, 16), narrowed.apply(1, 0));
    }

    #[test]
    fn wide_add_lane_skips_bits_beyond_plane_width() {
        let mut map = FaultMap::empty(4, 22);
        map.inject(2, 21, StuckAt::One);
        let mut planes = BatchFaultPlanes::new(4, 16);
        planes.add_lane(0, &map, None);
        assert_eq!(planes.dirty_mask(2), 0);
    }

    #[test]
    fn clear_forgets_everything_and_is_reusable() {
        let mut planes = BatchFaultPlanes::new(8, 16);
        planes.inject(0, 1, 0, StuckAt::One);
        planes.clear();
        assert_eq!(planes.lanes(), 0);
        assert_eq!(planes.dirty_mask(1), 0);
        assert_eq!(lane_view(&planes, 1, 0x1234, 0, 16), 0x1234);
        planes.inject(1, 2, 5, StuckAt::Zero);
        assert_eq!(planes.dirty_mask(2), 1 << 1);
        assert_eq!(lane_view(&planes, 2, 0xFFFF, 1, 16), 0xFFFF & !(1 << 5));
    }

    #[test]
    fn reinjection_flips_polarity_like_fault_map_inject() {
        let mut planes = BatchFaultPlanes::new(4, 16);
        planes.inject(0, 1, 7, StuckAt::One);
        planes.inject(0, 1, 7, StuckAt::Zero);
        assert_eq!(lane_view(&planes, 1, 0xFFFF, 0, 16), 0xFFFF & !(1 << 7));
    }

    #[test]
    #[should_panic(expected = "lane out of range")]
    fn lane_65_rejected() {
        let mut planes = BatchFaultPlanes::new(4, 16);
        planes.inject(MAX_LANES, 0, 0, StuckAt::One);
    }

    #[test]
    #[should_panic(expected = "overlay wider than planes")]
    fn over_wide_overlay_rejected() {
        let planes = BatchFaultPlanes::new(4, 16);
        let mut out = [0u64; 17];
        planes.overlay(0, 0, &mut out);
    }
}
