//! Memory array geometry.

/// Geometry of a word-organized memory array.
///
/// The paper's platform (the INYU node modelled on VirtualSOC, §V) uses a
/// 32 kB shared data memory of 16-bit words divided into 16 banks accessed
/// through a crossbar; [`MemGeometry::inyu_data_memory`] is that preset.
///
/// ```
/// use dream_mem::MemGeometry;
/// let g = MemGeometry::inyu_data_memory();
/// assert_eq!(g.words(), 16 * 1024);
/// assert_eq!(g.banks(), 16);
/// assert_eq!(g.capacity_bytes(), 32 * 1024);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemGeometry {
    words: usize,
    bits_per_word: u32,
    banks: usize,
}

impl MemGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, `bits_per_word > 32`, or `banks`
    /// does not divide `words`.
    pub fn new(words: usize, bits_per_word: u32, banks: usize) -> Self {
        assert!(words > 0, "memory must have at least one word");
        assert!(
            (1..=32).contains(&bits_per_word),
            "word width must be 1..=32"
        );
        assert!(banks > 0, "memory must have at least one bank");
        assert_eq!(words % banks, 0, "banks must evenly divide the word count");
        MemGeometry {
            words,
            bits_per_word,
            banks,
        }
    }

    /// The paper's shared data memory: 32 kB of 16-bit words in 16 banks.
    pub fn inyu_data_memory() -> Self {
        MemGeometry::new(16 * 1024, 16, 16)
    }

    /// The DREAM side memory for the INYU geometry: one 5-bit entry (sign +
    /// 4-bit mask ID) per data word, single bank, always at nominal voltage.
    pub fn inyu_mask_memory() -> Self {
        MemGeometry::new(16 * 1024, 5, 1)
    }

    /// Number of words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits.
    pub fn bits_per_word(&self) -> u32 {
        self.bits_per_word
    }

    /// Number of banks (low-order interleaved).
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Total number of bit cells.
    pub fn total_bits(&self) -> usize {
        self.words * self.bits_per_word as usize
    }

    /// Capacity in bytes, rounded down (a 5-bit-wide array reports its true
    /// cell count divided by 8).
    pub fn capacity_bytes(&self) -> usize {
        self.total_bits() / 8
    }

    /// Bank that services `addr` (low-order interleaving, as in the TCDMs
    /// of PULP-style platforms VirtualSOC models).
    #[inline]
    pub fn bank_of(&self, addr: usize) -> usize {
        addr % self.banks
    }

    /// Row within the bank for `addr`.
    #[inline]
    pub fn row_of(&self, addr: usize) -> usize {
        addr / self.banks
    }

    /// Returns a geometry with the same word count and banking but a
    /// different word width (e.g. widening the array from 16 to 22 bits to
    /// hold ECC check bits).
    pub fn with_width(&self, bits_per_word: u32) -> Self {
        MemGeometry::new(self.words, bits_per_word, self.banks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inyu_preset_matches_paper() {
        let g = MemGeometry::inyu_data_memory();
        assert_eq!(g.capacity_bytes(), 32 * 1024);
        assert_eq!(g.banks(), 16);
        assert_eq!(g.bits_per_word(), 16);
    }

    #[test]
    fn banking_is_low_order_interleaved() {
        let g = MemGeometry::new(64, 16, 4);
        assert_eq!(g.bank_of(0), 0);
        assert_eq!(g.bank_of(1), 1);
        assert_eq!(g.bank_of(5), 1);
        assert_eq!(g.row_of(5), 1);
        assert_eq!(g.row_of(63), 15);
    }

    #[test]
    fn widening_preserves_words_and_banks() {
        let g = MemGeometry::inyu_data_memory().with_width(22);
        assert_eq!(g.words(), 16 * 1024);
        assert_eq!(g.bits_per_word(), 22);
        assert_eq!(g.banks(), 16);
    }

    #[test]
    #[should_panic(expected = "banks must evenly divide")]
    fn uneven_banking_rejected() {
        let _ = MemGeometry::new(10, 16, 3);
    }

    #[test]
    fn mask_memory_is_five_bits() {
        // Formula 2 of the paper: 1 sign + log2(16) mask-ID bits.
        assert_eq!(MemGeometry::inyu_mask_memory().bits_per_word(), 5);
    }
}
