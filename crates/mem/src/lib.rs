//! Faulty-SRAM substrate: everything the paper's experimental setup (§V)
//! needs from the memory side.
//!
//! Voltage-scaled SRAM develops *permanent* (stuck-at) faults as the supply
//! approaches the transistor threshold. This crate models that stack:
//!
//! * [`BerModel`] — bit error rate as a function of the supply voltage,
//!   replacing the proprietary 32 nm low-power cell characterization the
//!   paper profiles (reference [2] of the paper). The default is a
//!   log-linear curve documented in `DESIGN.md`.
//! * [`FaultMap`] — a random stuck-at overlay over a word array, drawn with
//!   geometric skip-sampling so that even large memories at low BER are
//!   cheap to generate. The paper regenerates one map per simulation run
//!   (200 runs per voltage) and reuses it across all EMTs for fairness;
//!   [`FaultMap::generate`] is deterministic in the seed to support that.
//! * [`FaultModel`] — pluggable spatial fault distributions over a
//!   [`FaultMap`]: i.i.d. (bit-identical to `regenerate`), geometric burst
//!   clusters, per-bank weak columns, and per-bank voltage-domain drift.
//! * [`FaultySram`] — a bit-accurate word array combining clean storage with
//!   a fault overlay: writes store the true bits, reads see the stuck bits.
//! * [`AddressScrambler`] — the small logic the paper assumes for
//!   randomizing the logical→physical mapping of addresses and bit lanes.
//! * [`BatchFaultPlanes`] — up to [`MAX_LANES`] fault maps transposed into
//!   lane-per-trial bit planes, the storage behind batched (SWAR)
//!   Monte-Carlo trial execution.
//! * [`MemGeometry`] — array geometry (words × width, banking) with the
//!   INYU-node preset (32 kB, 16 banks, 16-bit words).
//!
//! # Example
//!
//! ```
//! use dream_mem::{BerModel, FaultMap, FaultySram, MemGeometry};
//!
//! let geometry = MemGeometry::inyu_data_memory();
//! let ber = BerModel::date16().ber(0.55);
//! let map = FaultMap::generate(geometry.words(), geometry.bits_per_word(), ber, 42);
//! let mut sram = FaultySram::with_faults(geometry, map);
//! sram.write(0, 0x1234);
//! let seen = sram.read(0); // possibly corrupted by stuck bits
//! assert_eq!(seen & !sram.fault_map().stuck_mask(0), 0x1234 & !sram.fault_map().stuck_mask(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod ber;
mod fault;
mod fault_model;
mod geometry;
mod scramble;
mod sram;

pub use batch::{BatchFaultPlanes, MAX_LANES};
pub use ber::BerModel;
pub use fault::{FaultMap, StuckAt};
pub use fault_model::FaultModel;
pub use geometry::MemGeometry;
pub use scramble::AddressScrambler;
pub use sram::FaultySram;
