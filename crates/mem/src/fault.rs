//! Stuck-at fault maps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The two permanent failure modes of a voltage-starved SRAM cell.
///
/// The paper injects both polarities: "Data corruption is caused by
/// permanent errors that occur at random positions and set the affected
/// memory bits to '1' or '0'" (§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StuckAt {
    /// The cell always reads 0 regardless of what was written.
    Zero,
    /// The cell always reads 1 regardless of what was written.
    One,
}

impl StuckAt {
    /// The bit value this fault forces.
    pub fn bit(self) -> u32 {
        match self {
            StuckAt::Zero => 0,
            StuckAt::One => 1,
        }
    }
}

/// A per-word stuck-at overlay for a memory array.
///
/// For every word the map stores which bit lanes are stuck (`stuck_mask`)
/// and the value they are stuck at (`stuck_val`). Applying the overlay to
/// read data is two bitwise operations, so fault injection adds O(1) work
/// per access regardless of how many faults exist.
///
/// Maps are value types: the paper evaluates all EMTs against *the same*
/// fault locations for fairness (§V), which callers get by cloning or
/// sharing one generated map.
///
/// ```
/// use dream_mem::{FaultMap, StuckAt};
/// let mut map = FaultMap::empty(4, 16);
/// map.inject(2, 15, StuckAt::One); // MSB of word 2 stuck at 1
/// assert_eq!(map.apply(2, 0x0000), 0x8000);
/// assert_eq!(map.apply(1, 0x0000), 0x0000);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultMap {
    words: usize,
    width: u32,
    stuck_mask: Vec<u32>,
    stuck_val: Vec<u32>,
    fault_count: usize,
}

impl FaultMap {
    /// Creates a fault-free map for `words` words of `width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 32.
    pub fn empty(words: usize, width: u32) -> Self {
        assert!((1..=32).contains(&width), "width must be in 1..=32");
        FaultMap {
            words,
            width,
            stuck_mask: vec![0; words],
            stuck_val: vec![0; words],
            fault_count: 0,
        }
    }

    /// Draws a random map where every bit cell is independently stuck with
    /// probability `ber` (polarity 50/50), deterministically from `seed`.
    ///
    /// Uses geometric skip-sampling: instead of flipping a coin per cell,
    /// the generator jumps directly between fault positions, so generation
    /// cost is proportional to the number of faults, not the number of
    /// cells. This is what makes the paper's 200-runs-per-voltage campaigns
    /// affordable at the 0.9 V end where faults are vanishingly rare.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not within `[0.0, 1.0]` or `width` is not in
    /// `1..=32`.
    pub fn generate(words: usize, width: u32, ber: f64, seed: u64) -> Self {
        let mut map = FaultMap::empty(words, width);
        map.regenerate(ber, seed);
        map
    }

    /// Clears every fault, leaving dimensions (and allocations) intact.
    pub fn clear(&mut self) {
        self.stuck_mask.fill(0);
        self.stuck_val.fill(0);
        self.fault_count = 0;
    }

    /// Redraws this map in place, exactly as [`FaultMap::generate`] would
    /// with the same dimensions — campaign workers reuse one allocation
    /// across thousands of trials.
    ///
    /// # Panics
    ///
    /// Panics if `ber` is not within `[0.0, 1.0]`.
    pub fn regenerate(&mut self, ber: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&ber), "ber must be a probability");
        self.clear();
        let (words, width) = (self.words, self.width);
        if ber == 0.0 || words == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let total_bits = words as u64 * u64::from(width);
        if ber >= 1.0 {
            for w in 0..words {
                for b in 0..width {
                    let stuck = if rng.gen::<bool>() {
                        StuckAt::One
                    } else {
                        StuckAt::Zero
                    };
                    self.inject(w, b, stuck);
                }
            }
            return;
        }
        // Geometric skipping: gap ~ floor(ln(U) / ln(1 - p)) cells between
        // consecutive faults.
        let log1m = (1.0 - ber).ln();
        let mut pos: u64 = 0;
        loop {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let gap = (u.ln() / log1m).floor() as u64;
            pos = match pos.checked_add(gap) {
                Some(p) => p,
                None => break,
            };
            if pos >= total_bits {
                break;
            }
            let word = (pos / u64::from(width)) as usize;
            let bit = (pos % u64::from(width)) as u32;
            let stuck = if rng.gen::<bool>() {
                StuckAt::One
            } else {
                StuckAt::Zero
            };
            self.inject(word, bit, stuck);
            pos += 1;
            if pos >= total_bits {
                break;
            }
        }
    }

    /// Forces `bit` of `word` to be stuck at the given polarity.
    ///
    /// Re-injecting an already-stuck bit overwrites its polarity without
    /// double-counting it.
    ///
    /// # Panics
    ///
    /// Panics if `word` or `bit` is out of range.
    pub fn inject(&mut self, word: usize, bit: u32, stuck: StuckAt) {
        assert!(word < self.words, "word index out of range");
        assert!(bit < self.width, "bit index out of range");
        let lane = 1u32 << bit;
        if self.stuck_mask[word] & lane == 0 {
            self.fault_count += 1;
        }
        self.stuck_mask[word] |= lane;
        match stuck {
            StuckAt::One => self.stuck_val[word] |= lane,
            StuckAt::Zero => self.stuck_val[word] &= !lane,
        }
    }

    /// Applies the overlay: returns what a read of `bits` stored in `word`
    /// actually sees.
    #[inline]
    pub fn apply(&self, word: usize, bits: u32) -> u32 {
        (bits & !self.stuck_mask[word]) | (self.stuck_val[word] & self.stuck_mask[word])
    }

    /// The stuck-bit lanes of `word`.
    #[inline]
    pub fn stuck_mask(&self, word: usize) -> u32 {
        self.stuck_mask[word]
    }

    /// The values the stuck lanes of `word` are forced to.
    #[inline]
    pub fn stuck_values(&self, word: usize) -> u32 {
        self.stuck_val[word] & self.stuck_mask[word]
    }

    /// Total number of stuck bit cells in the map.
    pub fn fault_count(&self) -> usize {
        self.fault_count
    }

    /// Number of words covered by the map.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Word width in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of words that contain at least `n` stuck bits — the quantity
    /// that decides whether ECC SEC/DED (which dies at 2 faults/word) or
    /// DREAM (which survives any count inside the mask) wins at a voltage.
    pub fn words_with_at_least(&self, n: u32) -> usize {
        self.stuck_mask
            .iter()
            .filter(|m| m.count_ones() >= n)
            .count()
    }

    /// Iterates over `(word, bit, polarity)` for every stuck cell.
    pub fn iter_faults(&self) -> impl Iterator<Item = (usize, u32, StuckAt)> + '_ {
        self.stuck_mask
            .iter()
            .enumerate()
            .flat_map(move |(w, &mask)| {
                (0..self.width).filter_map(move |b| {
                    if mask & (1 << b) != 0 {
                        let pol = if self.stuck_val[w] & (1 << b) != 0 {
                            StuckAt::One
                        } else {
                            StuckAt::Zero
                        };
                        Some((w, b, pol))
                    } else {
                        None
                    }
                })
            })
    }

    /// Builds a map with the *same* fault pattern but a different word
    /// width, truncating faults that fall outside the new width.
    ///
    /// Used when comparing EMTs with different codeword widths (16-bit raw
    /// vs 22-bit ECC) over "the same set of error locations/mappings" as the
    /// paper prescribes.
    pub fn with_width(&self, width: u32) -> FaultMap {
        let mut out = FaultMap::empty(self.words, width);
        if width >= self.width {
            // Widening keeps every fault: no lanes exist above the source
            // width, so the pattern copies verbatim.
            out.stuck_mask.copy_from_slice(&self.stuck_mask);
            out.stuck_val.copy_from_slice(&self.stuck_val);
            out.fault_count = self.fault_count;
        } else {
            out.copy_narrowed_from(self);
        }
        out
    }

    /// Overwrites this map with the fault pattern of `src`, truncating
    /// faults outside this map's (narrower or equal) width — the in-place,
    /// allocation-free counterpart of [`FaultMap::with_width`].
    ///
    /// # Panics
    ///
    /// Panics if the word counts differ or `src` is narrower than `self`.
    pub fn copy_narrowed_from(&mut self, src: &FaultMap) {
        assert_eq!(src.words, self.words, "fault map word count");
        assert!(
            src.width >= self.width,
            "source map must cover this map's width"
        );
        let keep = if self.width == 32 {
            u32::MAX
        } else {
            (1u32 << self.width) - 1
        };
        self.fault_count = 0;
        for w in 0..self.words {
            self.stuck_mask[w] = src.stuck_mask[w] & keep;
            self.stuck_val[w] = src.stuck_val[w] & keep;
            self.fault_count += self.stuck_mask[w].count_ones() as usize;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_is_transparent() {
        let map = FaultMap::empty(8, 16);
        for w in 0..8 {
            assert_eq!(map.apply(w, 0xA5A5), 0xA5A5);
        }
        assert_eq!(map.fault_count(), 0);
    }

    #[test]
    fn injection_forces_bits() {
        let mut map = FaultMap::empty(2, 16);
        map.inject(0, 3, StuckAt::One);
        map.inject(0, 5, StuckAt::Zero);
        assert_eq!(map.apply(0, 0x0000), 0x0008);
        assert_eq!(map.apply(0, 0xFFFF), 0xFFDF);
        assert_eq!(map.fault_count(), 2);
    }

    #[test]
    fn reinjection_does_not_double_count() {
        let mut map = FaultMap::empty(1, 16);
        map.inject(0, 7, StuckAt::One);
        map.inject(0, 7, StuckAt::Zero);
        assert_eq!(map.fault_count(), 1);
        assert_eq!(map.apply(0, 0xFFFF), 0xFF7F);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = FaultMap::generate(4096, 16, 1e-3, 7);
        let b = FaultMap::generate(4096, 16, 1e-3, 7);
        let c = FaultMap::generate(4096, 16, 1e-3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generation_count_tracks_ber() {
        let words = 65_536;
        let width = 16;
        let ber = 1e-3;
        let map = FaultMap::generate(words, width, ber, 99);
        let expected = words as f64 * f64::from(width) * ber;
        let got = map.fault_count() as f64;
        // 6-sigma band for a binomial with ~1049 expected faults.
        let sigma = (expected * (1.0 - ber)).sqrt();
        assert!(
            (got - expected).abs() < 6.0 * sigma,
            "got {got}, expected {expected} +- {sigma}"
        );
    }

    #[test]
    fn zero_ber_means_no_faults() {
        let map = FaultMap::generate(10_000, 22, 0.0, 1);
        assert_eq!(map.fault_count(), 0);
    }

    #[test]
    fn full_ber_sticks_everything() {
        let map = FaultMap::generate(64, 16, 1.0, 1);
        assert_eq!(map.fault_count(), 64 * 16);
        for w in 0..64 {
            assert_eq!(map.stuck_mask(w), 0xFFFF);
        }
    }

    #[test]
    fn iter_faults_agrees_with_count() {
        let map = FaultMap::generate(2048, 22, 5e-3, 3);
        assert_eq!(map.iter_faults().count(), map.fault_count());
        for (w, b, pol) in map.iter_faults() {
            assert!(map.stuck_mask(w) & (1 << b) != 0);
            assert_eq!((map.stuck_values(w) >> b) & 1, pol.bit());
        }
    }

    #[test]
    fn width_restriction_preserves_low_lanes() {
        let mut map = FaultMap::empty(4, 22);
        map.inject(1, 3, StuckAt::One);
        map.inject(1, 20, StuckAt::One);
        let narrow = map.with_width(16);
        assert_eq!(narrow.fault_count(), 1);
        assert_eq!(narrow.apply(1, 0), 0x0008);
    }

    #[test]
    fn regenerate_matches_generate() {
        let mut reused = FaultMap::generate(2048, 22, 5e-3, 1);
        reused.regenerate(2e-3, 42);
        assert_eq!(reused, FaultMap::generate(2048, 22, 2e-3, 42));
        reused.clear();
        assert_eq!(reused, FaultMap::empty(2048, 22));
    }

    #[test]
    fn widening_preserves_every_fault() {
        let narrow = FaultMap::generate(256, 16, 1e-2, 4);
        let wide = narrow.with_width(22);
        assert_eq!(wide.width(), 22);
        assert_eq!(wide.fault_count(), narrow.fault_count());
        for w in 0..256 {
            assert_eq!(wide.stuck_mask(w), narrow.stuck_mask(w));
            assert_eq!(wide.stuck_values(w), narrow.stuck_values(w));
        }
    }

    #[test]
    fn narrowed_copy_matches_with_width() {
        let wide = FaultMap::generate(512, 22, 1e-2, 9);
        let mut narrow = FaultMap::generate(512, 16, 0.5, 3); // stale content
        narrow.copy_narrowed_from(&wide);
        assert_eq!(narrow, wide.with_width(16));
    }

    #[test]
    fn multi_fault_word_census() {
        let mut map = FaultMap::empty(4, 16);
        map.inject(0, 0, StuckAt::One);
        map.inject(0, 1, StuckAt::One);
        map.inject(2, 9, StuckAt::Zero);
        assert_eq!(map.words_with_at_least(1), 2);
        assert_eq!(map.words_with_at_least(2), 1);
        assert_eq!(map.words_with_at_least(3), 0);
    }
}
