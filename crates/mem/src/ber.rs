//! Bit-error-rate versus supply-voltage model.

/// Bit error rate of a low-power SRAM cell as a function of supply voltage.
///
/// The paper profiles a 32 nm low-power memory for each voltage level
/// (its reference [2]); that silicon characterization is not public, so this
/// model substitutes a parametric curve: `log10(BER)` is affine in the
/// voltage, which matches the near-exponential growth of cell failure
/// probability as the supply approaches threshold reported across the
/// near-threshold SRAM literature.
///
/// The defaults ([`BerModel::date16`]) are anchored so the qualitative
/// regimes of the paper's Fig. 4 appear at the reported voltages: negligible
/// fault rates at 0.9 V, onset of unprotected degradation below ~0.85 V,
/// multi-error words (that defeat ECC SEC/DED but not DREAM) below ~0.55 V.
///
/// ```
/// use dream_mem::BerModel;
/// let m = BerModel::date16();
/// assert!(m.ber(0.9) < 1e-7);
/// assert!(m.ber(0.5) > 1e-4);
/// assert!(m.ber(0.5) > m.ber(0.6));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BerModel {
    nominal_v: f64,
    log10_ber_at_nominal: f64,
    log10_slope_per_volt: f64,
}

impl BerModel {
    /// The nominal supply voltage of the modelled technology (0.9 V).
    pub const NOMINAL_VOLTAGE: f64 = 0.9;

    /// The calibration used throughout the reproduction (see `DESIGN.md` §6):
    /// `log10 BER = -7.6 + 13.0 * (0.9 - V)`.
    pub fn date16() -> Self {
        BerModel {
            nominal_v: Self::NOMINAL_VOLTAGE,
            log10_ber_at_nominal: -7.6,
            log10_slope_per_volt: 13.0,
        }
    }

    /// Builds a custom model.
    ///
    /// `log10_ber_at_nominal` is the `log10` of the BER at `nominal_v`;
    /// `log10_slope_per_volt` is how many decades the BER grows per volt of
    /// down-scaling.
    ///
    /// # Panics
    ///
    /// Panics if `nominal_v` is not positive or the slope is negative (the
    /// model must be monotone: lower voltage, more errors).
    pub fn new(nominal_v: f64, log10_ber_at_nominal: f64, log10_slope_per_volt: f64) -> Self {
        assert!(nominal_v > 0.0, "nominal voltage must be positive");
        assert!(
            log10_slope_per_volt >= 0.0,
            "BER must not decrease as voltage drops"
        );
        BerModel {
            nominal_v,
            log10_ber_at_nominal,
            log10_slope_per_volt,
        }
    }

    /// Nominal supply voltage of this model (V).
    pub fn nominal_v(&self) -> f64 {
        self.nominal_v
    }

    /// `log10` of the BER at the nominal voltage.
    pub fn log10_ber_at_nominal(&self) -> f64 {
        self.log10_ber_at_nominal
    }

    /// Decades of BER growth per volt of down-scaling.
    pub fn log10_slope_per_volt(&self) -> f64 {
        self.log10_slope_per_volt
    }

    /// Bit error rate at supply voltage `v` (clamped to `[0.0, 0.5]`;
    /// a fully random cell is wrong half the time).
    pub fn ber(&self, v: f64) -> f64 {
        let log10 = self.log10_ber_at_nominal + self.log10_slope_per_volt * (self.nominal_v - v);
        10f64.powf(log10).clamp(0.0, 0.5)
    }

    /// The voltage grid of the paper's Fig. 4: 0.50 V to 0.90 V in 0.05 V
    /// steps (ascending).
    pub fn paper_voltages() -> Vec<f64> {
        (0..=8).map(|i| 0.50 + 0.05 * f64::from(i)).collect()
    }

    /// Expected number of faulty bits in an array of `bits` cells at
    /// voltage `v`.
    pub fn expected_faults(&self, v: f64, bits: usize) -> f64 {
        self.ber(v) * bits as f64
    }
}

impl Default for BerModel {
    fn default() -> Self {
        Self::date16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_decreasing_with_voltage() {
        let m = BerModel::date16();
        let grid = BerModel::paper_voltages();
        for pair in grid.windows(2) {
            assert!(
                m.ber(pair[0]) > m.ber(pair[1]),
                "{} vs {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn date16_anchors() {
        let m = BerModel::date16();
        assert!((m.ber(0.9).log10() - (-7.6)).abs() < 1e-9);
        // At 0.5 V: -7.6 + 13.0 * 0.4 = -2.4
        assert!((m.ber(0.5).log10() - (-2.4)).abs() < 1e-9);
    }

    #[test]
    fn ber_is_clamped() {
        let m = BerModel::new(0.9, -1.0, 20.0);
        assert_eq!(m.ber(0.0), 0.5);
    }

    #[test]
    fn paper_grid_matches_figure_axis() {
        let grid = BerModel::paper_voltages();
        assert_eq!(grid.len(), 9);
        assert!((grid[0] - 0.5).abs() < 1e-12);
        assert!((grid[8] - 0.9).abs() < 1e-12);
    }

    #[test]
    fn expected_faults_scale_with_size() {
        let m = BerModel::date16();
        let one = m.expected_faults(0.6, 1_000);
        let ten = m.expected_faults(0.6, 10_000);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "BER must not decrease")]
    fn negative_slope_rejected() {
        let _ = BerModel::new(0.9, -7.0, -1.0);
    }
}
