//! Property-based tests for the faulty-memory substrate.

use dream_mem::{AddressScrambler, BerModel, FaultMap, FaultySram, MemGeometry, StuckAt};
use proptest::prelude::*;

proptest! {
    /// The overlay is idempotent: applying it twice changes nothing.
    #[test]
    fn overlay_idempotent(seed in any::<u64>(), bits in any::<u32>()) {
        let map = FaultMap::generate(256, 16, 0.05, seed);
        for w in 0..256 {
            let once = map.apply(w, bits & 0xFFFF);
            prop_assert_eq!(map.apply(w, once), once);
        }
    }

    /// A read through a faulty SRAM differs from the written value only in
    /// stuck lanes, and in those lanes equals the stuck value.
    #[test]
    fn faults_only_touch_stuck_lanes(seed in any::<u64>(), value in any::<u16>()) {
        let g = MemGeometry::new(128, 16, 1);
        let map = FaultMap::generate(128, 16, 0.02, seed);
        let mut sram = FaultySram::with_faults(g, map);
        for a in 0..128 {
            sram.write(a, u32::from(value));
            let seen = sram.read(a);
            let mask = sram.fault_map().stuck_mask(a);
            prop_assert_eq!(seen & !mask, u32::from(value) & !mask);
            prop_assert_eq!(seen & mask, sram.fault_map().stuck_values(a));
        }
    }

    /// The scrambler is a bijection for arbitrary sizes and keys.
    #[test]
    fn scrambler_bijective(words in 1usize..2000, key in any::<u64>()) {
        let s = AddressScrambler::new(words, key);
        let mut seen = vec![false; words];
        for a in 0..words {
            let p = s.to_physical(a);
            prop_assert!(p < words);
            prop_assert!(!seen[p], "collision at {}", p);
            seen[p] = true;
            prop_assert_eq!(s.to_logical(p), a);
        }
    }

    /// BER is monotone non-increasing in voltage for any legal parameters.
    #[test]
    fn ber_monotone(nominal in 0.5f64..1.2, log10 in -12.0f64..-1.0, slope in 0.0f64..20.0) {
        let m = BerModel::new(nominal, log10, slope);
        let mut prev = f64::INFINITY;
        for i in 0..20 {
            let v = 0.3 + 0.05 * f64::from(i);
            let b = m.ber(v);
            prop_assert!(b <= prev + 1e-18);
            prev = b;
        }
    }

    /// Generated maps never place faults outside the word width.
    #[test]
    fn faults_within_width(seed in any::<u64>(), width in 1u32..=32) {
        let map = FaultMap::generate(512, width, 0.01, seed);
        let lane_mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
        for w in 0..512 {
            prop_assert_eq!(map.stuck_mask(w) & !lane_mask, 0);
        }
    }

    /// Injecting then reading back through an otherwise clean map recovers
    /// exactly the injected polarity.
    #[test]
    fn inject_polarity_respected(word in 0usize..64, bit in 0u32..16, one in any::<bool>()) {
        let mut map = FaultMap::empty(64, 16);
        let pol = if one { StuckAt::One } else { StuckAt::Zero };
        map.inject(word, bit, pol);
        let seen = map.apply(word, if one { 0x0000 } else { 0xFFFF });
        prop_assert_eq!((seen >> bit) & 1, pol.bit());
    }
}
