//! Gate-equivalent cost model for synthesized logic blocks.

use std::fmt;

use crate::calib;

/// Primitive gates the codec netlists are counted in.
///
/// Areas are expressed in gate equivalents (GE, 1 GE = one NAND2), the unit
/// synthesis reports use, with typical standard-cell-library ratios.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Inverter.
    Not,
    /// 2-input NAND (the unit cell).
    Nand2,
    /// 2-input AND/OR class cell.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR — the workhorse of parity logic.
    Xor2,
    /// 2-input XNOR (bit-equality comparators).
    Xnor2,
    /// 2-to-1 multiplexer.
    Mux2,
    /// N-input AND (decoder product terms), N >= 2.
    AndN(u32),
    /// N-input OR, N >= 2.
    OrN(u32),
    /// D flip-flop (pipeline/output registers).
    Dff,
}

impl Gate {
    /// Area of the gate in gate equivalents.
    pub fn area_ge(self) -> f64 {
        match self {
            Gate::Not => 0.5,
            Gate::Nand2 => 1.0,
            Gate::And2 | Gate::Or2 => 1.25,
            Gate::Xor2 | Gate::Xnor2 => 2.5,
            Gate::Mux2 => 2.25,
            // Wide gates decompose into trees of 2-input cells.
            Gate::AndN(n) | Gate::OrN(n) => 1.25 * f64::from(n.max(2) - 1),
            Gate::Dff => 4.5,
        }
    }
}

/// A counted bag of gates describing one synthesized block.
///
/// `dream-core` builds one netlist per codec (DREAM encoder, DREAM decoder,
/// ECC encoder, ECC decoder) from the block's actual logic structure; area
/// and per-operation energy derive from the counts. This replaces the
/// paper's Design Compiler area/power reports.
///
/// ```
/// use dream_energy::{Gate, Netlist};
/// let mut n = Netlist::new("parity-tree");
/// n.add(Gate::Xor2, 15); // 16-input parity
/// assert_eq!(n.area_ge(), 15.0 * 2.5);
/// assert!(n.op_energy_pj(0.9) > 0.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Netlist {
    name: String,
    counts: Vec<(Gate, usize)>,
}

impl Netlist {
    /// Creates an empty netlist with a descriptive block name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            counts: Vec::new(),
        }
    }

    /// Adds `count` instances of `gate`.
    pub fn add(&mut self, gate: Gate, count: usize) -> &mut Self {
        self.counts.push((gate, count));
        self
    }

    /// The block name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total gate instances.
    pub fn gate_count(&self) -> usize {
        self.counts.iter().map(|(_, c)| c).sum()
    }

    /// Total area in gate equivalents.
    pub fn area_ge(&self) -> f64 {
        self.counts
            .iter()
            .map(|(g, c)| g.area_ge() * *c as f64)
            .sum()
    }

    /// Switching energy of one operation of the block at supply `v`, in
    /// picojoules: `area × energy-per-GE × activity × (V/V0)²`.
    pub fn op_energy_pj(&self, v: f64) -> f64 {
        self.area_ge() * calib::LOGIC_PJ_PER_GE * calib::LOGIC_ACTIVITY * calib::dynamic_scale(v)
    }

    /// Relative area overhead of `self` with respect to `other`, as a
    /// fraction (`0.28` = 28 % bigger). This is the statistic the paper
    /// quotes when comparing the ECC and DREAM codecs.
    pub fn area_overhead_vs(&self, other: &Netlist) -> f64 {
        self.area_ge() / other.area_ge() - 1.0
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} gates, {:.1} GE",
            self.name,
            self.gate_count(),
            self.area_ge()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand2_is_the_unit() {
        assert_eq!(Gate::Nand2.area_ge(), 1.0);
    }

    #[test]
    fn wide_gates_decompose_into_trees() {
        // An 8-input AND needs 7 two-input cells.
        assert_eq!(Gate::AndN(8).area_ge(), 1.25 * 7.0);
        // Degenerate widths clamp to a single cell.
        assert_eq!(Gate::AndN(1).area_ge(), 1.25);
    }

    #[test]
    fn area_accumulates() {
        let mut n = Netlist::new("t");
        n.add(Gate::Xor2, 4).add(Gate::Not, 2);
        assert_eq!(n.area_ge(), 4.0 * 2.5 + 2.0 * 0.5);
        assert_eq!(n.gate_count(), 6);
    }

    #[test]
    fn op_energy_scales_with_voltage() {
        let mut n = Netlist::new("t");
        n.add(Gate::Xor2, 100);
        assert!((n.op_energy_pj(0.9) / n.op_energy_pj(0.45) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn overhead_comparison() {
        let mut a = Netlist::new("a");
        a.add(Gate::Nand2, 128);
        let mut b = Netlist::new("b");
        b.add(Gate::Nand2, 100);
        assert!((b.area_overhead_vs(&a) - (-0.21875)).abs() < 1e-9);
        assert!((a.area_overhead_vs(&b) - 0.28).abs() < 1e-9);
    }
}
