//! Calibration constants for the 32 nm low-power technology point.
//!
//! The paper obtains its energy numbers from CACTI 6.5 (memory arrays) and
//! Synopsys Design Compiler synthesis reports (EMT encoders/decoders) for a
//! 32 nm node at 343 K. Neither artifact is reproducible directly, so this
//! module pins every free parameter of our analytical substitutes in one
//! place. The values are chosen so that the *measured* outputs of the
//! harness land in the ballpark the paper reports (ECC SEC/DED ≈ +55 %
//! energy overhead, DREAM ≈ +34 %, see `EXPERIMENTS.md` for what the model
//! actually produces); the physics (quadratic dynamic scaling, exponential
//! leakage, width-proportional bitline energy) is what carries the shape of
//! the trade-off, not the absolute picojoules.

/// Nominal supply voltage of the technology (V). Voltage sweeps in the
/// paper run from 0.9 V down to 0.5 V.
pub const NOMINAL_VOLTAGE: f64 = 0.9;

/// Operating temperature assumed by the paper for its CACTI runs (K).
pub const OPERATING_TEMP_K: f64 = 343.0;

/// Periphery (decoder + wordline + sense) energy per access of the main
/// 32 kB data array, at nominal voltage (pJ).
pub const MAIN_PERIPHERY_PJ: f64 = 1.0;

/// Bitline + cell energy per accessed bit of the main array, at nominal
/// voltage (pJ/bit).
pub const MAIN_BITLINE_PJ_PER_BIT: f64 = 0.65;

/// Periphery energy per access of the small (10 kB) DREAM mask array, at
/// nominal voltage (pJ). Smaller macro, shorter wordlines.
pub const SIDE_PERIPHERY_PJ: f64 = 0.32;

/// Bitline energy per accessed bit of the mask array (pJ/bit). The mask
/// macro is a fraction of the main array's height, so its bitlines switch
/// less capacitance per bit.
pub const SIDE_BITLINE_PJ_PER_BIT: f64 = 0.23;

/// Leakage power per bit cell at nominal voltage and 343 K (pW). 343 K is
/// hot for a wearable, which is exactly why the paper fixes it: leakage is
/// the pessimistic corner.
pub const LEAKAGE_PW_PER_CELL: f64 = 15.0;

/// DIBL-style exponential voltage sensitivity of leakage (V). Leakage
/// scales as `(V/V0) * exp((V - V0)/V_DIBL)`.
pub const LEAKAGE_V_DIBL: f64 = 0.15;

/// Switching energy per gate-equivalent per operation at nominal voltage
/// (pJ/GE), including local wiring and clocking overhead of the synthesized
/// codec blocks.
pub const LOGIC_PJ_PER_GE: f64 = 0.020;

/// Average switching activity factor assumed for codec logic.
pub const LOGIC_ACTIVITY: f64 = 0.5;

/// Supply voltage of the always-reliable mask memory (V). The paper keeps
/// this array "at a high supply voltage level to prevent the occurrence of
/// permanent errors" — we pin it at nominal.
pub const MASK_SUPPLY_VOLTAGE: f64 = NOMINAL_VOLTAGE;

/// Quadratic dynamic-energy scaling factor for a supply of `v` volts.
///
/// ```
/// assert!((dream_energy::calib::dynamic_scale(0.9) - 1.0).abs() < 1e-12);
/// assert!((dream_energy::calib::dynamic_scale(0.45) - 0.25).abs() < 1e-12);
/// ```
pub fn dynamic_scale(v: f64) -> f64 {
    let r = v / NOMINAL_VOLTAGE;
    r * r
}

/// Leakage scaling factor for a supply of `v` volts (linear-times-
/// exponential DIBL model, normalized to 1.0 at nominal).
pub fn leakage_scale(v: f64) -> f64 {
    (v / NOMINAL_VOLTAGE) * ((v - NOMINAL_VOLTAGE) / LEAKAGE_V_DIBL).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_scale_is_quadratic() {
        assert!((dynamic_scale(0.45) - 0.25).abs() < 1e-12);
        assert!((dynamic_scale(0.9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leakage_drops_faster_than_linear() {
        let half = leakage_scale(0.45);
        assert!(half < 0.5, "DIBL should push leakage below linear: {half}");
        assert!(half > 0.0);
    }

    #[test]
    fn leakage_normalized_at_nominal() {
        assert!((leakage_scale(NOMINAL_VOLTAGE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn side_array_cheaper_than_main() {
        // Bind to locals: the point is pinning the calibration relation, and
        // clippy rejects assertions on constant expressions.
        let (side_periphery, main_periphery) = (SIDE_PERIPHERY_PJ, MAIN_PERIPHERY_PJ);
        let (side_bitline, main_bitline) = (SIDE_BITLINE_PJ_PER_BIT, MAIN_BITLINE_PJ_PER_BIT);
        assert!(side_periphery < main_periphery);
        assert!(side_bitline < main_bitline);
    }
}
