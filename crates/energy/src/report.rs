//! Energy accounting.

use core::iter::Sum;
use core::ops::{Add, AddAssign};
use std::fmt;

/// Energy consumed by one (portion of an) application run, split the way
/// the paper's §VI-B analysis needs it.
///
/// All fields are picojoules. The experiment harness accumulates one
/// breakdown per run and compares totals across EMTs; the split makes the
/// *source* of each EMT's overhead visible (ECC pays in the widened data
/// array and its decoder, DREAM pays in the side mask memory).
///
/// ```
/// use dream_energy::EnergyBreakdown;
/// let mut e = EnergyBreakdown::default();
/// e.data_dynamic_pj = 100.0;
/// e.codec_pj = 10.0;
/// let double = e + e;
/// assert_eq!(double.total_pj(), 220.0);
/// assert!((double.overhead_vs(&(e + e)).abs()) < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Dynamic energy of the (voltage-scaled) data array.
    pub data_dynamic_pj: f64,
    /// Dynamic energy of the side/mask array (DREAM only; zero otherwise).
    pub side_dynamic_pj: f64,
    /// Switching energy of the EMT encoder/decoder logic.
    pub codec_pj: f64,
    /// Leakage energy of all arrays over the run's duration.
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.data_dynamic_pj + self.side_dynamic_pj + self.codec_pj + self.leakage_pj
    }

    /// Total energy in nanojoules.
    pub fn total_nj(&self) -> f64 {
        self.total_pj() * 1e-3
    }

    /// Fractional overhead of `self` relative to `baseline` (`0.55` = 55 %
    /// more energy than the baseline).
    ///
    /// # Panics
    ///
    /// Panics if the baseline total is zero.
    pub fn overhead_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        let base = baseline.total_pj();
        assert!(base > 0.0, "baseline energy must be positive");
        self.total_pj() / base - 1.0
    }

    /// Fractional savings of `self` relative to `baseline` (`0.30` = 30 %
    /// less energy). Positive when `self` is cheaper.
    ///
    /// # Panics
    ///
    /// Panics if the baseline total is zero.
    pub fn savings_vs(&self, baseline: &EnergyBreakdown) -> f64 {
        -self.overhead_vs(baseline)
    }

    /// Scales every component (e.g. to average across campaign runs).
    pub fn scaled(&self, k: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            data_dynamic_pj: self.data_dynamic_pj * k,
            side_dynamic_pj: self.side_dynamic_pj * k,
            codec_pj: self.codec_pj * k,
            leakage_pj: self.leakage_pj * k,
        }
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            data_dynamic_pj: self.data_dynamic_pj + rhs.data_dynamic_pj,
            side_dynamic_pj: self.side_dynamic_pj + rhs.side_dynamic_pj,
            codec_pj: self.codec_pj + rhs.codec_pj,
            leakage_pj: self.leakage_pj + rhs.leakage_pj,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> Self {
        iter.fold(EnergyBreakdown::default(), |a, b| a + b)
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} pJ (data {:.1}, side {:.1}, codec {:.1}, leak {:.1})",
            self.total_pj(),
            self.data_dynamic_pj,
            self.side_dynamic_pj,
            self.codec_pj,
            self.leakage_pj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(d: f64, s: f64, c: f64, l: f64) -> EnergyBreakdown {
        EnergyBreakdown {
            data_dynamic_pj: d,
            side_dynamic_pj: s,
            codec_pj: c,
            leakage_pj: l,
        }
    }

    #[test]
    fn totals_sum_components() {
        assert_eq!(sample(1.0, 2.0, 3.0, 4.0).total_pj(), 10.0);
    }

    #[test]
    fn overhead_and_savings_are_inverse() {
        let base = sample(100.0, 0.0, 0.0, 0.0);
        let more = sample(100.0, 30.0, 25.0, 0.0);
        assert!((more.overhead_vs(&base) - 0.55).abs() < 1e-12);
        assert!((more.savings_vs(&base) + 0.55).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![sample(1.0, 0.0, 0.0, 0.0); 5];
        let total: EnergyBreakdown = parts.into_iter().sum();
        assert_eq!(total.total_pj(), 5.0);
    }

    #[test]
    fn scaling_divides_for_averages() {
        let t = sample(10.0, 20.0, 30.0, 40.0).scaled(0.1);
        assert!((t.total_pj() - 10.0).abs() < 1e-12);
    }
}
