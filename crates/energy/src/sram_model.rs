//! Analytical SRAM macro energy model (CACTI substitute).

use crate::calib;

/// Per-access and leakage energy model of one SRAM macro.
///
/// Dynamic energy per access decomposes into a periphery term (address
/// decoder, wordline, sense amplifiers — independent of word width) and a
/// bitline term proportional to the number of bits accessed; both scale
/// quadratically with the supply voltage. Leakage is per-cell with the
/// DIBL-style exponential voltage dependence of [`calib::leakage_scale`],
/// evaluated at the paper's 343 K corner.
///
/// Two presets cover the paper's platform:
///
/// * [`SramEnergyModel::date16_main`] — the 32 kB shared data memory (which
///   grows to 44 kB of cells when ECC widens the words to 22 bits),
/// * [`SramEnergyModel::date16_side`] — the small, always-on-nominal mask
///   memory used by DREAM (16 K × 5 bits = 10 kB).
///
/// ```
/// use dream_energy::SramEnergyModel;
/// let m = SramEnergyModel::date16_main();
/// // Widening a word from 16 to 22 bits (ECC) costs bitline energy.
/// assert!(m.access_energy_pj(22, 0.9) > m.access_energy_pj(16, 0.9));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SramEnergyModel {
    periphery_pj: f64,
    bitline_pj_per_bit: f64,
    leakage_pw_per_cell: f64,
}

impl SramEnergyModel {
    /// Builds a model from raw coefficients (all at nominal voltage).
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative.
    pub fn new(periphery_pj: f64, bitline_pj_per_bit: f64, leakage_pw_per_cell: f64) -> Self {
        assert!(periphery_pj >= 0.0 && bitline_pj_per_bit >= 0.0 && leakage_pw_per_cell >= 0.0);
        SramEnergyModel {
            periphery_pj,
            bitline_pj_per_bit,
            leakage_pw_per_cell,
        }
    }

    /// The main 32 kB data array of the INYU platform.
    pub fn date16_main() -> Self {
        SramEnergyModel::new(
            calib::MAIN_PERIPHERY_PJ,
            calib::MAIN_BITLINE_PJ_PER_BIT,
            calib::LEAKAGE_PW_PER_CELL,
        )
    }

    /// The small DREAM mask array (narrow macro, short bitlines).
    pub fn date16_side() -> Self {
        SramEnergyModel::new(
            calib::SIDE_PERIPHERY_PJ,
            calib::SIDE_BITLINE_PJ_PER_BIT,
            calib::LEAKAGE_PW_PER_CELL,
        )
    }

    /// Dynamic energy of one access of `width_bits` bits at supply `v`, in
    /// picojoules.
    pub fn access_energy_pj(&self, width_bits: u32, v: f64) -> f64 {
        (self.periphery_pj + self.bitline_pj_per_bit * f64::from(width_bits))
            * calib::dynamic_scale(v)
    }

    /// Leakage power of an array of `cells` bit cells at supply `v`, in
    /// microwatts (343 K corner baked into the per-cell coefficient).
    pub fn leakage_power_uw(&self, cells: usize, v: f64) -> f64 {
        self.leakage_pw_per_cell * cells as f64 * calib::leakage_scale(v) * 1e-6
    }

    /// Leakage energy of `cells` bit cells held at supply `v` for
    /// `seconds`, in picojoules.
    pub fn leakage_energy_pj(&self, cells: usize, v: f64, seconds: f64) -> f64 {
        // uW * s = uJ; 1 uJ = 1e6 pJ.
        self.leakage_power_uw(cells, v) * seconds * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_energy_scales_quadratically() {
        let m = SramEnergyModel::date16_main();
        let e_nom = m.access_energy_pj(16, 0.9);
        let e_half = m.access_energy_pj(16, 0.45);
        assert!((e_nom / e_half - 4.0).abs() < 1e-9);
    }

    #[test]
    fn width_increases_energy_linearly() {
        let m = SramEnergyModel::date16_main();
        let e16 = m.access_energy_pj(16, 0.9);
        let e22 = m.access_energy_pj(22, 0.9);
        let per_bit = (e22 - e16) / 6.0;
        assert!((per_bit - crate::calib::MAIN_BITLINE_PJ_PER_BIT).abs() < 1e-12);
    }

    #[test]
    fn leakage_energy_integrates_power() {
        let m = SramEnergyModel::date16_main();
        let p_uw = m.leakage_power_uw(262_144, 0.9);
        let e_pj = m.leakage_energy_pj(262_144, 0.9, 1e-3);
        assert!((e_pj - p_uw * 1e-3 * 1e6).abs() < 1e-6);
    }

    #[test]
    fn side_array_access_cheaper_than_main() {
        let main = SramEnergyModel::date16_main();
        let side = SramEnergyModel::date16_side();
        assert!(side.access_energy_pj(5, 0.9) < main.access_energy_pj(16, 0.9) / 2.0);
    }

    #[test]
    fn leakage_monotone_in_voltage() {
        let m = SramEnergyModel::date16_main();
        let mut prev = 0.0;
        for i in 0..=8 {
            let v = 0.5 + 0.05 * f64::from(i);
            let p = m.leakage_power_uw(1000, v);
            assert!(p > prev);
            prev = p;
        }
    }
}
