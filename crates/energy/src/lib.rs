//! Energy and area substrate: the reproduction's stand-in for CACTI 6.5 and
//! the Synopsys Design Compiler synthesis reports used by the paper (SS V).
//!
//! Three models live here:
//!
//! * [`SramEnergyModel`] — an analytical CACTI-like model of a voltage-scaled
//!   SRAM macro: per-access dynamic energy (periphery + bitline terms, both
//!   scaling with `V²`) and leakage power (per-cell, with a DIBL factor, at
//!   the paper's 343 K operating point).
//! * [`Gate`] / [`Netlist`] — a gate-equivalent cost model for the EMT
//!   encoders and decoders. `dream-core` builds the actual logic structure
//!   of each codec as a [`Netlist`]; area (GE) and per-operation switching
//!   energy fall out of the gate counts, which is how we re-derive the
//!   paper's "ECC needs 28 % more encoder area and 120 % more decoder area
//!   than DREAM" comparison instead of copying it.
//! * [`EnergyBreakdown`] — the accounting unit the experiment harness sums:
//!   data-array dynamic energy, side(mask)-array dynamic energy, codec
//!   switching energy, and leakage.
//!
//! All calibration constants are centralized in [`calib`] and discussed in
//! `DESIGN.md` §6; `EXPERIMENTS.md` records what the calibrated model
//! actually produces next to the paper's numbers.
//!
//! # Example
//!
//! ```
//! use dream_energy::{SramEnergyModel, calib};
//!
//! let main = SramEnergyModel::date16_main();
//! // Scaling 0.9 V -> 0.5 V cuts dynamic energy by (0.5/0.9)^2 ~ 3.2x.
//! let nominal = main.access_energy_pj(16, 0.9);
//! let scaled = main.access_energy_pj(16, 0.5);
//! assert!(nominal / scaled > 3.0 && nominal / scaled < 3.5);
//! assert_eq!(calib::NOMINAL_VOLTAGE, 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod logic;
mod report;
mod sram_model;

pub use logic::{Gate, Netlist};
pub use report::EnergyBreakdown;
pub use sram_model::SramEnergyModel;
