//! Regression tests for the paper's qualitative claims: each test pins one
//! sentence of the paper to a measurable property of the reproduction.
//! These run at reduced campaign scale (the full-scale numbers live in
//! `EXPERIMENTS.md` and regenerate via `dream-bench`).

use dream_suite::core::{Dream, EmtCodec, EmtKind};
use dream_suite::dsp::AppKind;
use dream_suite::ecg::Database;
use dream_suite::mem::{BerModel, StuckAt};
use dream_suite::sim::energy_table::{
    area_table, average_overhead, ecc_vs_dream_area, run_energy_table, EnergyConfig,
};
use dream_suite::sim::fig2::{cs_tolerance, run_fig2, Fig2Config};
use dream_suite::sim::fig4::{curve, run_fig4, Fig4Config};
use dream_suite::sim::tradeoff::explore;

fn fig4_small(apps: Vec<AppKind>, runs: usize) -> Vec<dream_suite::sim::fig4::Fig4Point> {
    run_fig4(&Fig4Config {
        window: 512,
        runs,
        apps,
        ..Default::default()
    })
}

/// §I / §VI-B: "DREAM consumes 21% less energy than a traditional ECC with
/// SEC/DED capabilities" — read as overhead points: ECC ≈ +55 %, DREAM
/// ≈ +34 %, gap ≈ 21 points.
#[test]
fn claim_energy_overheads() {
    let rows = run_energy_table(&EnergyConfig::default());
    let dream = average_overhead(&rows, EmtKind::Dream);
    let ecc = average_overhead(&rows, EmtKind::EccSecDed);
    assert!((0.25..0.45).contains(&dream), "DREAM overhead {dream:.3}");
    assert!((0.45..0.65).contains(&ecc), "ECC overhead {ecc:.3}");
    assert!(
        (0.12..0.30).contains(&(ecc - dream)),
        "gap {:.3} (paper: 0.21)",
        ecc - dream
    );
}

/// §VI-B: "ECC requires 28% of area overhead for the encoder and 120% for
/// the decoder, compared to those of DREAM."
#[test]
fn claim_codec_area_ratios() {
    let (enc, dec) = ecc_vs_dream_area(&area_table(&EmtKind::paper_set()));
    assert!((0.15..0.55).contains(&enc), "encoder overhead {enc:.2}");
    assert!((0.95..1.45).contains(&dec), "decoder overhead {dec:.2}");
}

/// §V / Formula 2: 5 extra bits per word for DREAM, 6 for ECC SEC/DED.
#[test]
fn claim_formula_2_bits() {
    assert_eq!(dream_suite::core::extra_bits_per_word(16), 5);
    let dream = EmtKind::Dream.codec();
    assert_eq!(dream.side_bits(), 5);
    let ecc = EmtKind::EccSecDed.codec();
    assert_eq!(ecc.code_width() - 16, 6);
}

/// §III: "the continuous decrease of the SNR as the erroneous bit is
/// shifted towards the MSB positions" — monotone trend over bit triplets.
#[test]
fn claim_fig2_msb_trend() {
    let rows = run_fig2(&Fig2Config {
        window: 512,
        records: 4,
        apps: vec![AppKind::Dwt, AppKind::MorphologicalFilter],
        fault_trials: 4,
    });
    for app in [AppKind::Dwt, AppKind::MorphologicalFilter] {
        for stuck in [StuckAt::Zero, StuckAt::One] {
            let snr_at = |bit: u32| {
                rows.iter()
                    .find(|r| r.app == app && r.stuck == stuck && r.bit == bit)
                    .unwrap()
                    .snr_db
            };
            // Compare LSB / mid / MSB bands rather than bit-by-bit (the
            // paper's own curves wiggle locally).
            let lsb = (snr_at(0) + snr_at(1) + snr_at(2)) / 3.0;
            let mid = (snr_at(7) + snr_at(8) + snr_at(9)) / 3.0;
            let msb = (snr_at(13) + snr_at(14) + snr_at(15)) / 3.0;
            assert!(lsb > mid, "{app} {stuck:?}: {lsb:.1} !> {mid:.1}");
            // The mid -> MSB decrease only holds for stuck-at-0: the
            // paper's own Fig. 2 shows stuck-at-1 curves flattening or
            // *rising* again at the MSBs because most samples are negative
            // (their sign bits are already 1).
            if stuck == StuckAt::Zero {
                assert!(mid > msb, "{app} {stuck:?}: {mid:.1} !> {msb:.1}");
            }
        }
    }
}

/// §III: "CS can tolerate errors on the bit positions from 0 to 10, for
/// bits stuck-at-0; and from 0 to 12, for bits stuck-at-1" at 35 dB.
#[test]
fn claim_cs_tolerance_thresholds() {
    // Full campaign scale for this claim: at fewer records/trials the CS
    // curve sits within 0.1 dB of the 35 dB threshold around bit 13 and the
    // extracted tolerance flips on averaging noise.
    let rows = run_fig2(&Fig2Config {
        window: 1024,
        records: 10,
        apps: vec![AppKind::CompressedSensing],
        fault_trials: 8,
    });
    let (sa0, sa1) = cs_tolerance(&rows, 35.0);
    let sa0 = sa0.expect("some tolerance for stuck-at-0");
    let sa1 = sa1.expect("some tolerance for stuck-at-1");
    assert!(
        (8..=12).contains(&sa0),
        "stuck-at-0 tolerance {sa0} (paper: 10)"
    );
    assert!(
        sa1 >= sa0,
        "stuck-at-1 {sa1} must tolerate at least as much as stuck-at-0 {sa0}"
    );
    assert!(sa1 >= 12, "stuck-at-1 tolerance {sa1} (paper: 12)");
}

/// §VI-A: "Below 0.55V (with multiple errors in the same data word) ECC
/// SEC/DED underperforms" — the DREAM/ECC crossover at the bottom of the
/// sweep, and ECC's (small) advantage in the 0.60–0.65 V band.
#[test]
fn claim_fig4_crossover() {
    let points = fig4_small(vec![AppKind::Dwt], 12);
    let dream = curve(&points, AppKind::Dwt, EmtKind::Dream);
    let ecc = curve(&points, AppKind::Dwt, EmtKind::EccSecDed);
    let at = |c: &[dream_suite::sim::fig4::Fig4Point], v: f64| {
        c.iter()
            .find(|p| (p.voltage - v).abs() < 1e-9)
            .unwrap()
            .mean_snr_db
    };
    // Crossover: at 0.50 V DREAM wins (multi-error words).
    assert!(
        at(&dream, 0.5) > at(&ecc, 0.5) + 3.0,
        "DREAM {:.1} vs ECC {:.1} at 0.5 V",
        at(&dream, 0.5),
        at(&ecc, 0.5)
    );
    // Mid band: ECC at least matches DREAM.
    for v in [0.6, 0.65] {
        assert!(
            at(&ecc, v) >= at(&dream, v) - 0.5,
            "ECC {:.1} vs DREAM {:.1} at {v} V",
            at(&ecc, v),
            at(&dream, v)
        );
    }
    // Both beat no protection at 0.6 V.
    let none = curve(&points, AppKind::Dwt, EmtKind::None);
    assert!(at(&dream, 0.6) > at(&none, 0.6));
    assert!(at(&ecc, 0.6) > at(&none, 0.6));
}

/// §VI-C: the three-regime policy — the minimum usable voltage is ordered
/// none ≥ DREAM ≥ ECC, and protected regimes reach strictly below the
/// unprotected one.
#[test]
fn claim_tradeoff_regimes() {
    let points = fig4_small(vec![AppKind::Dwt], 12);
    let energy = run_energy_table(&EnergyConfig {
        window: 512,
        ..Default::default()
    });
    let policies = explore(AppKind::Dwt, 1.0, &points, &energy);
    let min_v = |emt: EmtKind| {
        policies
            .iter()
            .find(|p| p.emt == emt)
            .unwrap()
            .min_voltage
            .expect("usable")
    };
    assert!(min_v(EmtKind::None) >= min_v(EmtKind::Dream));
    assert!(min_v(EmtKind::Dream) >= min_v(EmtKind::EccSecDed));
    assert!(min_v(EmtKind::None) > min_v(EmtKind::EccSecDed));
    // Every regime must save energy versus nominal-unprotected.
    for p in &policies {
        let s = p.savings_vs_nominal.expect("usable");
        assert!(s > 0.0, "{}: savings {s:.3}", p.emt);
    }
}

/// §IV: "the smaller the data encoded inside the data-word is, the bigger
/// the number of MSBs set to the same value" — DREAM's protected share on
/// real ECG data is high.
#[test]
fn claim_dream_protects_most_bits_of_real_ecg() {
    let record = Database::record(100, 2048);
    let total: u32 = record
        .samples
        .iter()
        .map(|&s| Dream::protected_bits(s))
        .sum();
    let avg = f64::from(total) / record.samples.len() as f64;
    // Our ADC leaves ~13 bits of dynamic range (R peaks near 2^13), so the
    // average sign-run protection sits above a third of the word; with the
    // MIT-BIH 11-bit amplitudes the share would be higher still.
    assert!(
        avg > 6.0,
        "average protected bits {avg:.1} of 16 should exceed a third of the word"
    );
}

/// §V: the BER sweep covers the figure's voltage axis with monotone rates.
#[test]
fn claim_ber_model_regimes() {
    let m = BerModel::date16();
    assert!(
        m.ber(0.9) < 1e-6,
        "nominal voltage is effectively fault-free"
    );
    assert!(m.ber(0.5) > 1e-3, "deep scaling produces multi-error words");
    let g = BerModel::paper_voltages();
    assert_eq!(g.len(), 9);
}
