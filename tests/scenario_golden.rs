//! Golden-output differential test for the scenario engine.
//!
//! The five paper presets (`fig2`, `fig4`, `energy`, `tradeoff`,
//! `ablation`) must produce **byte-identical** rows to the pre-refactor
//! per-figure runners. The files under `tests/golden/` were captured from
//! the historical code (PR 3 tree) at the presets' smoke scales; this
//! test replays each preset through the engine's CSV sink at 1 and at 4
//! worker threads and compares the full byte stream.

use dream_suite::sim::report::CsvSink;
use dream_suite::sim::scenario::{registry, CampaignRunner, FaultModelSpec, Scenario};

fn scenario_csv_at_threads(sc: &Scenario, threads: usize) -> String {
    // The runner pins the worker count per campaign (no process-global
    // override), so concurrently running tests cannot race each other.
    let mut sink = CsvSink::new(Vec::new());
    let outcome = CampaignRunner::new(sc.clone())
        .threads(threads)
        .run(&mut sink)
        .expect("preset runs");
    assert!(!outcome.rows.is_empty(), "{} produced no rows", sc.name);
    String::from_utf8(sink.into_inner()).expect("CSV is UTF-8")
}

fn csv_at_threads(preset: &str, threads: usize) -> String {
    let sc = registry::get(preset, true).expect("preset exists");
    scenario_csv_at_threads(&sc, threads)
}

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

fn assert_matches_golden(preset: &str, file: &str) {
    let want = golden(file);
    for threads in [1, 4] {
        let got = csv_at_threads(preset, threads);
        assert!(
            got == want,
            "{preset} at {threads} thread(s) diverged from the pre-refactor golden {file}\n\
             --- first differing line ---\n{}",
            got.lines()
                .zip(want.lines())
                .enumerate()
                .find(|(_, (g, w))| g != w)
                .map_or_else(
                    || format!(
                        "line counts differ: got {}, want {}",
                        got.lines().count(),
                        want.lines().count()
                    ),
                    |(i, (g, w))| format!("line {}: got  {g:?}\n         want {w:?}", i + 1)
                )
        );
    }
}

#[test]
fn fig2_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("fig2", "fig2_smoke.csv");
}

#[test]
fn fig4_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("fig4", "fig4_smoke.csv");
}

#[test]
fn energy_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("energy", "energy_smoke.csv");
}

#[test]
fn tradeoff_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("tradeoff", "tradeoff_smoke.csv");
}

#[test]
fn ablation_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("ablation", "ablation_smoke.csv");
}

/// The pluggable fault-model layer's correctness bar: with `model: iid`
/// spelled out in a spec document, every golden preset — replayed through
/// the full JSON parse path — still matches the pre-refactor bytes at 1
/// and 4 worker threads.
#[test]
fn explicit_iid_model_through_spec_json_stays_golden() {
    for (preset, file) in [
        ("fig2", "fig2_smoke.csv"),
        ("fig4", "fig4_smoke.csv"),
        ("energy", "energy_smoke.csv"),
        ("tradeoff", "tradeoff_smoke.csv"),
        ("ablation", "ablation_smoke.csv"),
    ] {
        let sc = registry::get(preset, true).expect("preset exists");
        assert_eq!(
            sc.fault.model,
            FaultModelSpec::Iid,
            "{preset}: paper presets must default to the i.i.d. model"
        );
        // Serialize (which spells out "model": {"kind": "iid"}) and
        // re-parse — the `dream run spec.json` path.
        let spec = sc.to_json();
        assert!(
            spec.contains("\"iid\""),
            "{preset}: model missing from spec"
        );
        let parsed = Scenario::from_json(&spec).expect("spec parses");
        assert_eq!(parsed, sc, "{preset}: JSON round-trip must be lossless");
        let want = golden(file);
        for threads in [1, 4] {
            let got = scenario_csv_at_threads(&parsed, threads);
            assert!(
                got == want,
                "{preset} with explicit iid model diverged from {file} at {threads} thread(s)"
            );
        }
    }
}
