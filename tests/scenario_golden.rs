//! Golden-output differential test for the scenario engine.
//!
//! The five paper presets (`fig2`, `fig4`, `energy`, `tradeoff`,
//! `ablation`) must produce **byte-identical** rows to the pre-refactor
//! per-figure runners. The files under `tests/golden/` were captured from
//! the historical code (PR 3 tree) at the presets' smoke scales; this
//! test replays each preset through the engine's CSV sink at 1 and at 4
//! worker threads and compares the full byte stream.

use std::sync::Mutex;

use dream_suite::sim::exec;
use dream_suite::sim::report::CsvSink;
use dream_suite::sim::scenario::{registry, run_with_sink};

/// Serializes tests that pin the global thread override.
static THREAD_LOCK: Mutex<()> = Mutex::new(());

fn csv_at_threads(preset: &str, threads: usize) -> String {
    let sc = registry::get(preset, true).expect("preset exists");
    exec::set_thread_override(Some(threads));
    let mut sink = CsvSink::new(Vec::new());
    let outcome = run_with_sink(&sc, &mut sink);
    exec::set_thread_override(None);
    let outcome = outcome.expect("preset runs");
    assert!(!outcome.rows.is_empty(), "{preset} produced no rows");
    String::from_utf8(sink.into_inner()).expect("CSV is UTF-8")
}

fn golden(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()))
}

fn assert_matches_golden(preset: &str, file: &str) {
    let _guard = THREAD_LOCK.lock().expect("thread lock");
    let want = golden(file);
    for threads in [1, 4] {
        let got = csv_at_threads(preset, threads);
        assert!(
            got == want,
            "{preset} at {threads} thread(s) diverged from the pre-refactor golden {file}\n\
             --- first differing line ---\n{}",
            got.lines()
                .zip(want.lines())
                .enumerate()
                .find(|(_, (g, w))| g != w)
                .map_or_else(
                    || format!(
                        "line counts differ: got {}, want {}",
                        got.lines().count(),
                        want.lines().count()
                    ),
                    |(i, (g, w))| format!("line {}: got  {g:?}\n         want {w:?}", i + 1)
                )
        );
    }
}

#[test]
fn fig2_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("fig2", "fig2_smoke.csv");
}

#[test]
fn fig4_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("fig4", "fig4_smoke.csv");
}

#[test]
fn energy_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("energy", "energy_smoke.csv");
}

#[test]
fn tradeoff_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("tradeoff", "tradeoff_smoke.csv");
}

#[test]
fn ablation_preset_is_byte_identical_to_the_pre_refactor_runner() {
    assert_matches_golden("ablation", "ablation_smoke.csv");
}
