//! End-to-end tests of sharded campaign execution: a coordinator
//! `dream serve` fanning one campaign's grid out over worker servers via
//! `POST /shards`, reassembling the per-shard sub-artifacts into the
//! parent artifact **byte-identically** to a serial run — plus the
//! evented connection layer serving a follower crowd far larger than its
//! handler pool.
//!
//! The workers here are in-process [`Server`] instances in worker mode
//! (the process-spawning path is exercised by the CI smoke, which boots
//! `dream serve --shards 2` for real); the HTTP surface between
//! coordinator and worker is exactly the production one.

use std::net::TcpListener;
use std::path::PathBuf;

use dream_suite::serve::chaos::{ChaosProxy, Fault};
use dream_suite::serve::http::client_request;
use dream_suite::serve::{campaign_id, ServeConfig, Server, Store};
use dream_suite::sim::report::JsonlSink;
use dream_suite::sim::scenario::{registry, Scenario, ShardPlan};
use dream_suite::CampaignRunner;

/// A seconds-scale campaign with two apps — the sharding axis for the
/// fig2 family — so a 2-shard plan has real work on both sides.
fn shardable_spec() -> Scenario {
    let mut sc = registry::get("fig2", true).expect("preset exists");
    sc.records = 1;
    sc.trials = 1;
    sc.apps.truncate(2);
    sc
}

fn reference_jsonl(sc: &Scenario) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    CampaignRunner::new(sc.clone())
        .threads(2)
        .run(&mut sink)
        .expect("reference run");
    String::from_utf8(sink.into_inner()).expect("jsonl is UTF-8")
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dream_sharded_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Boots an in-process shard worker (direct execution, never re-shards).
fn boot_worker(store_dir: PathBuf) -> String {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir,
        workers: 2,
        threads: 1,
        worker: true,
        ..ServeConfig::default()
    })
    .expect("worker binds");
    server.spawn().to_string()
}

/// Boots a coordinator that fans campaigns out to `worker_addrs`.
fn boot_coordinator(store_dir: PathBuf, shards: usize, worker_addrs: Vec<String>) -> String {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir,
        workers: 1,
        threads: 1,
        shards,
        worker_addrs,
        ..ServeConfig::default()
    })
    .expect("coordinator binds");
    server.spawn().to_string()
}

fn get_json(addr: &str, path: &str) -> String {
    let response = client_request(addr, "GET", path, b"").expect("GET");
    assert_eq!(response.status, 200, "{path}");
    String::from_utf8(response.body).expect("JSON is UTF-8")
}

/// Extracts `"key": <number>` from a flat stats/status JSON object.
fn json_number(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {body}"))
        + needle.len();
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric stat")
}

#[test]
fn coordinator_reassembles_shards_byte_identically_and_replays_from_cache() {
    let sc = shardable_spec();
    let want = reference_jsonl(&sc);
    let w1 = boot_worker(temp_store("w1"));
    let w2 = boot_worker(temp_store("w2"));
    let addr = boot_coordinator(temp_store("coord"), 2, vec![w1.clone(), w2.clone()]);
    let payload = sc.to_json();

    // First POST fans out and streams the reassembled artifact — same id,
    // same bytes, same cache semantics as an unsharded run.
    let first = client_request(&addr, "POST", "/campaigns", payload.as_bytes()).expect("POST 1");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-dream-cache"), Some("miss"));
    assert_eq!(
        first.header("x-campaign-id"),
        Some(campaign_id(&sc).as_str())
    );
    assert_eq!(
        String::from_utf8(first.body.clone()).unwrap(),
        want,
        "sharded reassembly must be byte-identical to the serial artifact"
    );

    // The coordinator executed zero trials itself; the workers split the
    // campaign exactly.
    let stats = get_json(&addr, "/stats");
    assert_eq!(json_number(&stats, "trials_executed"), 0);
    assert_eq!(json_number(&stats, "campaigns_run"), 1);
    assert_eq!(json_number(&stats, "shards_done"), 2);
    let worker_trials = json_number(&get_json(&w1, "/stats"), "trials_executed")
        + json_number(&get_json(&w2, "/stats"), "trials_executed");
    assert_eq!(worker_trials, sc.flatten().len() as u64);

    // The worker topology is visible at /healthz.
    let healthz = get_json(&addr, "/healthz");
    assert_eq!(json_number(&healthz, "shards_configured"), 2);
    assert_eq!(json_number(&healthz, "shard_workers_configured"), 2);
    assert_eq!(json_number(&healthz, "shard_workers_alive"), 2);
    assert_eq!(json_number(&healthz, "shards_done"), 2);

    // Replay is a coordinator-local cache hit: nothing touches a worker.
    let second = client_request(&addr, "POST", "/campaigns", payload.as_bytes()).expect("POST 2");
    assert_eq!(second.header("x-dream-cache"), Some("hit"));
    assert_eq!(second.body, first.body);
    let stats = get_json(&addr, "/stats");
    assert_eq!(json_number(&stats, "cache_hits"), 1);
    assert_eq!(json_number(&stats, "campaigns_run"), 1);
}

#[test]
fn unshardable_campaigns_run_directly_on_the_coordinator() {
    // One app → one unit → trivial plan: the coordinator must fall back
    // to direct execution instead of fanning out a K=1 no-op.
    let mut sc = shardable_spec();
    sc.apps.truncate(1);
    assert!(ShardPlan::new(&sc, 2).expect("plan").is_trivial());
    let want = reference_jsonl(&sc);
    let worker = boot_worker(temp_store("triv_w"));
    let addr = boot_coordinator(temp_store("triv_coord"), 2, vec![worker.clone()]);

    let response =
        client_request(&addr, "POST", "/campaigns", sc.to_json().as_bytes()).expect("POST");
    assert_eq!(response.status, 200);
    assert_eq!(String::from_utf8(response.body).unwrap(), want);
    let stats = get_json(&addr, "/stats");
    assert_eq!(
        json_number(&stats, "trials_executed"),
        sc.flatten().len() as u64,
        "a trivial plan executes on the coordinator itself"
    );
    assert_eq!(
        json_number(&get_json(&worker, "/stats"), "trials_executed"),
        0,
        "no shard ever reaches a worker"
    );
}

#[test]
fn resume_landing_mid_shard_appends_only_the_missing_rows() {
    let sc = shardable_spec();
    let want = reference_jsonl(&sc);
    let id = campaign_id(&sc);
    let plan = ShardPlan::new(&sc, 2).expect("plan");
    let boundary = plan.shards()[1].row_offset;

    // Simulate a coordinator killed mid-reassembly: the parent artifact
    // holds all of shard 0, two rows of shard 1, and a ragged tail.
    let store_dir = temp_store("resume_coord");
    let store = Store::open(&store_dir).expect("store opens");
    store.begin(&id, &sc).expect("begin");
    let lines: Vec<&str> = want.lines().collect();
    let keep = boundary + 2;
    assert!(keep < lines.len(), "need rows beyond the seeded prefix");
    let mut partial: String = lines[..keep]
        .iter()
        .map(|line| format!("{line}\n"))
        .collect();
    partial.push_str(&lines[keep][..lines[keep].len() / 2]);
    std::fs::write(store.rows_path(&id), &partial).expect("seed partial artifact");

    let w1 = boot_worker(temp_store("resume_w1"));
    let w2 = boot_worker(temp_store("resume_w2"));
    let addr = boot_coordinator(store_dir, 2, vec![w1, w2]);
    let response =
        client_request(&addr, "POST", "/campaigns", sc.to_json().as_bytes()).expect("POST");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-dream-cache"), Some("miss"));
    assert_eq!(
        String::from_utf8(response.body).unwrap(),
        want,
        "mid-shard resume must reassemble byte-identically"
    );
    assert_eq!(
        std::fs::read_to_string(store.rows_path(&id)).unwrap(),
        want,
        "the on-disk parent artifact must also be byte-identical"
    );
    assert!(store.is_complete(&id));
}

#[test]
fn dead_and_dying_workers_cost_one_shard_refetch_each() {
    let sc = shardable_spec();
    let want = reference_jsonl(&sc);

    // Worker 0 is dead on arrival: a bound-then-dropped port refuses
    // every connection. Worker 1 sits behind a chaos proxy that kills the
    // first response stream mid-shard.
    let dead = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let live = boot_worker(temp_store("chaos_w"));
    let proxy = ChaosProxy::start(live.parse().expect("socket addr")).expect("proxy starts");
    proxy.push(Fault::CloseAfter(300));
    let addr = boot_coordinator(
        temp_store("chaos_coord"),
        2,
        vec![dead, proxy.addr().to_string()],
    );

    let response =
        client_request(&addr, "POST", "/campaigns", sc.to_json().as_bytes()).expect("POST");
    assert_eq!(response.status, 200);
    assert_eq!(
        String::from_utf8(response.body).unwrap(),
        want,
        "failover + mid-stream retry must still reassemble byte-identically"
    );
    assert_eq!(proxy.pending(), 0, "the injected fault fired");

    // Every shard reached the live worker exactly once: the interrupted
    // stream re-fetched rows, not trials (the worker kept running and the
    // retry joined/replayed its artifact).
    let worker_stats = get_json(&live, "/stats");
    assert_eq!(json_number(&worker_stats, "campaigns_run"), 2);
    assert_eq!(
        json_number(&worker_stats, "trials_executed"),
        sc.flatten().len() as u64
    );

    // The dead worker is reported at /healthz.
    let healthz = get_json(&addr, "/healthz");
    assert_eq!(json_number(&healthz, "shard_workers_configured"), 2);
    assert_eq!(json_number(&healthz, "shard_workers_alive"), 1);
    assert_eq!(json_number(&healthz, "shards_done"), 2);
}

#[test]
fn the_poller_serves_a_follower_crowd_larger_than_the_handler_pool() {
    let mut sc = shardable_spec();
    sc.apps.truncate(1);
    let want = reference_jsonl(&sc);
    let id = campaign_id(&sc);
    let addr = boot_worker(temp_store("crowd"));
    let first = client_request(&addr, "POST", "/campaigns", sc.to_json().as_bytes()).expect("POST");
    assert_eq!(first.status, 200);

    // 32 concurrent followers — four times the handler pool — each stream
    // the full artifact; streaming lives on the poller, so handler threads
    // only ever parse and hand off.
    let followers: Vec<_> = (0..32)
        .map(|_| {
            let addr = addr.clone();
            let path = format!("/campaigns/{id}/rows");
            std::thread::spawn(move || {
                let response = client_request(&addr, "GET", &path, b"").expect("GET rows");
                assert_eq!(response.status, 200);
                String::from_utf8(response.body).expect("rows are UTF-8")
            })
        })
        .collect();
    for follower in followers {
        let body = follower.join().expect("follower thread");
        assert_eq!(body, want, "every follower gets the full artifact");
    }
}
