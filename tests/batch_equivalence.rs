//! Bit-sliced trial batching is an *optimization*, never a semantic: this
//! suite runs smoke-scale campaigns with batching pinned off and on —
//! across the paper presets, every fault model, every EMT, with and
//! without the address scrambler, at 1 and 4 worker threads — and asserts
//! the streamed sink rows are **byte-identical**.
//!
//! The per-kernel half of the story (each SWAR `decode_batch` pinned
//! against the transpose-and-decode oracle) lives next to the codecs in
//! `dream-core`; this file pins the whole engine path: batch grouping,
//! divergence-driven eviction, scalar replay, stats deltas, and row
//! rendering.

use dream_sim::report::JsonlSink;
use dream_sim::scenario::{registry, CampaignRunner, FaultModelSpec, Grid, Scenario};

/// Runs `sc` at a pinned (batch, threads) setting and returns the exact
/// bytes its JSONL sink streamed.
fn jsonl(sc: &Scenario, batch: bool, threads: usize) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    CampaignRunner::new(sc.clone())
        .batch(batch)
        .threads(threads)
        .run(&mut sink)
        .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
    String::from_utf8(sink.into_inner()).expect("sinks emit UTF-8")
}

/// The invariant: scalar serial output is the reference, and batching
/// (at 1 and 4 threads) plus scalar-parallel all reproduce it exactly.
fn assert_batch_invariant(sc: &Scenario) {
    let reference = jsonl(sc, false, 1);
    assert!(!reference.is_empty(), "{}: no rows streamed", sc.name);
    assert_eq!(
        reference,
        jsonl(sc, false, 4),
        "{}: scalar output must be thread-count invariant",
        sc.name
    );
    for threads in [1, 4] {
        assert_eq!(
            reference,
            jsonl(sc, true, threads),
            "{}: batched output diverged at {threads} thread(s)",
            sc.name
        );
    }
}

/// A reduced fig4 shape for the axes the presets don't sweep (fault
/// models, scrambler): enough trials to fill multi-lane batches and a
/// voltage deep enough in the faulty region to force evictions.
fn tiny_fig4() -> Scenario {
    let mut sc = registry::get("fig4", true).expect("preset exists");
    sc.window = 512;
    sc.records = 2;
    sc.trials = 6;
    sc.grid = Grid::Voltage(vec![0.55, 0.8]);
    sc
}

#[test]
fn fig2_smoke_is_batch_invariant() {
    assert_batch_invariant(&registry::get("fig2", true).expect("preset exists"));
}

#[test]
fn fig4_smoke_is_batch_invariant() {
    assert_batch_invariant(&registry::get("fig4", true).expect("preset exists"));
}

#[test]
fn ablation_smoke_is_batch_invariant() {
    assert_batch_invariant(&registry::get("ablation", true).expect("preset exists"));
}

#[test]
fn every_fault_model_is_batch_invariant_across_all_emts() {
    let models = [
        FaultModelSpec::Iid,
        FaultModelSpec::Burst { mean_run_len: 8.0 },
        FaultModelSpec::ColumnCorrelated { column_weight: 0.5 },
        FaultModelSpec::PerBankVoltage {
            bank_offsets: FaultModelSpec::bank_ramp(0.05),
        },
    ];
    for model in models {
        let mut sc = tiny_fig4();
        sc.fault.model = model.clone();
        // Sweep every EMT so each codec's batch kernel is exercised end
        // to end under each fault model.
        sc.emts = dream_core::EmtKind::all().to_vec();
        assert_batch_invariant(&sc);
    }
}

#[test]
fn scrambled_campaigns_are_batch_invariant() {
    let mut sc = tiny_fig4();
    sc.scrambler_key = Some(0xA5A5);
    assert_batch_invariant(&sc);
}

/// Runs `sc` batched at a pinned bail-out fraction and returns the exact
/// bytes its JSONL sink streamed.
fn jsonl_bailout(sc: &Scenario, threads: usize, fraction: f64) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    CampaignRunner::new(sc.clone())
        .batch(true)
        .bailout(fraction)
        .threads(threads)
        .run(&mut sink)
        .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
    String::from_utf8(sink.into_inner()).expect("sinks emit UTF-8")
}

#[test]
fn bailout_threshold_never_changes_rows() {
    // The adaptive bail-out only moves lanes between the "survived the
    // plane pass" and "replayed scalar" buckets — both of which reproduce
    // the scalar trial exactly — so every threshold must stream the same
    // bytes: 0.0 never bails, 0.25 is the shipped default, 1.0 abandons a
    // whole group on its first eviction.
    let tradeoff = registry::get("tradeoff", true).expect("preset exists");
    for sc in [tiny_fig4(), tradeoff] {
        let reference = jsonl(&sc, false, 1);
        assert!(!reference.is_empty(), "{}: no rows streamed", sc.name);
        for fraction in [0.0, 0.25, 1.0] {
            for threads in [1, 4] {
                assert_eq!(
                    reference,
                    jsonl_bailout(&sc, threads, fraction),
                    "{}: bail-out {fraction} diverged at {threads} thread(s)",
                    sc.name
                );
            }
        }
    }
}
