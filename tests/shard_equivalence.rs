//! Sharding is a *distribution strategy*, never a semantic: this suite
//! partitions smoke-scale campaigns into K shards, runs every shard
//! independently, and asserts the concatenated shard rows are
//! **byte-identical** to the serial artifact — at K ∈ {1, 2, 4} and 1/4
//! worker threads per shard, exactly the way `tests/batch_equivalence.rs`
//! pins batch ≡ scalar.
//!
//! This is the load-bearing invariant behind `dream serve` fan-out: a
//! coordinator that concatenates shard sub-artifacts in plan order serves
//! the same bytes (and the same content-addressed store id) as an
//! unsharded run.

use dream_sim::report::JsonlSink;
use dream_sim::scenario::{registry, CampaignRunner, Scenario, ShardPlan};

/// Runs `sc` at a pinned thread count and returns the exact bytes its
/// JSONL sink streamed.
fn jsonl(sc: &Scenario, threads: usize) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    CampaignRunner::new(sc.clone())
        .threads(threads)
        .run(&mut sink)
        .unwrap_or_else(|e| panic!("{}: {e}", sc.name));
    String::from_utf8(sink.into_inner()).expect("sinks emit UTF-8")
}

/// The invariant: for every K and per-shard thread count, running each
/// shard spec independently and concatenating in plan order reproduces
/// the serial bytes, and each shard's row count matches its plan window.
fn assert_shard_invariant(sc: &Scenario) {
    let reference = jsonl(sc, 1);
    assert!(!reference.is_empty(), "{}: no rows streamed", sc.name);
    for k in [1usize, 2, 4] {
        let plan = ShardPlan::new(sc, k).expect("valid spec shards");
        for threads in [1usize, 4] {
            let mut reassembled = String::new();
            for shard in plan.shards() {
                let part = jsonl(&shard.spec, threads);
                if let Some(rows) = shard.rows {
                    assert_eq!(
                        part.lines().count(),
                        rows,
                        "{}: shard {}/{k} row count drifted from the plan",
                        sc.name,
                        shard.index
                    );
                }
                reassembled.push_str(&part);
            }
            assert_eq!(
                reference, reassembled,
                "{}: {k}-shard reassembly diverged at {threads} thread(s)",
                sc.name
            );
        }
    }
}

#[test]
fn fig2_smoke_shards_reassemble_byte_identically() {
    assert_shard_invariant(&registry::get("fig2", true).expect("preset exists"));
}

#[test]
fn fig4_smoke_shards_reassemble_byte_identically() {
    assert_shard_invariant(&registry::get("fig4", true).expect("preset exists"));
}

#[test]
fn noise_sweep_smoke_shards_reassemble_byte_identically() {
    assert_shard_invariant(&registry::get("noise-sweep", true).expect("preset exists"));
}

#[test]
fn geometry_sweep_smoke_shards_reassemble_byte_identically() {
    assert_shard_invariant(&registry::get("geometry-sweep", true).expect("preset exists"));
}

#[test]
fn scrambled_draw_campaigns_shard_byte_identically() {
    // The address scrambler derives per-point keys from the *global*
    // point index — exactly what `point_offset` preserves for grid-range
    // shards.
    let mut sc = registry::get("fig4", true).expect("preset exists");
    sc.window = 512;
    sc.records = 2;
    sc.trials = 2;
    sc.scrambler_key = Some(0xA5A5);
    assert_shard_invariant(&sc);
}

#[test]
fn unshardable_families_still_reassemble() {
    // Tradeoff/ablation collapse to one shard; the invariant holds
    // trivially and the plan never splits their interdependent rows.
    for preset in ["tradeoff", "ablation"] {
        let sc = registry::get(preset, true).expect("preset exists");
        let plan = ShardPlan::new(&sc, 4).expect("valid spec shards");
        assert!(plan.is_trivial());
        assert_shard_invariant(&sc);
    }
}
