//! End-to-end spec-file coverage for the post-paper scenarios:
//! `noise-sweep`, `geometry-sweep`, and the fault-model sweeps
//! `burst-sweep` / `bank-voltage` must run from a registry name *and*
//! from a JSON spec file, through every sink format, with identical rows.

use dream_suite::sim::report::{CsvSink, JsonlSink, Sink, TableSink};
use dream_suite::sim::scenario::{
    registry, CampaignRunner, EngineError, FaultModelSpec, Grid, Scenario, ScenarioOutcome,
};

/// These tests drive campaigns the way every current caller does — through
/// the [`CampaignRunner`] builder.
fn run_with_sink(sc: &Scenario, sink: &mut dyn Sink) -> Result<ScenarioOutcome, EngineError> {
    CampaignRunner::new(sc.clone()).run(sink)
}

/// Shrinks a smoke preset to seconds-scale for the differential runs.
fn tiny(preset: &str) -> Scenario {
    let mut sc = registry::get(preset, true).expect("preset exists");
    sc.records = 1;
    sc.trials = 1;
    sc.apps.truncate(1);
    sc.window = 512;
    match &mut sc.grid {
        Grid::NoiseScale(scales) => scales.truncate(2),
        Grid::MemoryWords(words) => words.truncate(2),
        Grid::Voltage(vs) => {
            // Keep the faulty end so the fault model actually draws.
            vs.truncate(2);
        }
        Grid::BitPosition(bits) => bits.truncate(2),
    }
    sc
}

fn run_all_sinks(sc: &Scenario) -> (String, String, String) {
    let mut csv = CsvSink::new(Vec::new());
    run_with_sink(sc, &mut csv).expect("csv run");
    let mut jsonl = JsonlSink::new(Vec::new());
    run_with_sink(sc, &mut jsonl).expect("jsonl run");
    let mut table = TableSink::new(Vec::new());
    run_with_sink(sc, &mut table).expect("table run");
    (
        String::from_utf8(csv.into_inner()).unwrap(),
        String::from_utf8(jsonl.into_inner()).unwrap(),
        String::from_utf8(table.into_inner()).unwrap(),
    )
}

#[test]
fn new_scenarios_run_from_name_and_from_spec_file_identically() {
    for preset in [
        "noise-sweep",
        "geometry-sweep",
        "burst-sweep",
        "bank-voltage",
    ] {
        let sc = tiny(preset);

        // Path A: the in-memory scenario (stand-in for `dream run <name>`).
        let (csv_a, jsonl_a, table_a) = run_all_sinks(&sc);
        assert!(!table_a.is_empty(), "{preset}: table sink rendered nothing");

        // Path B: serialize to a spec file on disk, re-parse, re-run —
        // the `dream run spec.json` path.
        let dir = std::env::temp_dir().join("dream_scenario_spec_e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{preset}.json"));
        std::fs::write(&path, sc.to_json()).unwrap();
        let reparsed =
            Scenario::from_json(&std::fs::read_to_string(&path).unwrap()).expect("spec parses");
        assert_eq!(reparsed, sc, "{preset}: disk round-trip must be lossless");
        let (csv_b, jsonl_b, table_b) = run_all_sinks(&reparsed);

        assert_eq!(csv_a, csv_b, "{preset}: name-run and spec-run CSV differ");
        assert_eq!(
            jsonl_a, jsonl_b,
            "{preset}: name-run and spec-run JSONL differ"
        );
        assert_eq!(
            table_a, table_b,
            "{preset}: name-run and spec-run table differ"
        );

        // Sanity on the emitted formats.
        let expected_rows = sc.grid.len() * sc.emts.len() * sc.apps.len().max(1);
        assert_eq!(csv_a.lines().count(), 1 + expected_rows, "{preset} csv");
        assert_eq!(jsonl_a.lines().count(), expected_rows, "{preset} jsonl");
        for line in jsonl_a.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "{preset}: malformed JSONL line {line:?}"
            );
        }
    }
}

#[test]
fn table_sink_renders_scenario_rows() {
    let sc = tiny("geometry-sweep");
    let mut table = TableSink::new(Vec::new());
    let outcome = run_with_sink(&sc, &mut table).expect("table run");
    // The table is written to the underlying buffer on finish(); verify
    // through the outcome's row view instead of poking at the sink.
    assert!(!outcome.rows.is_empty());
    assert_eq!(outcome.headers[0], "words");
}

#[test]
fn fault_model_axis_changes_outcomes_at_faulty_voltages() {
    // The model field must be a live axis: at 0.5 V the burst and
    // bank-voltage draws place different faults than i.i.d., so the rows
    // diverge — equality would mean the layer is dead code.
    let mut sc = tiny("fig4");
    sc.trials = 2;
    sc.grid = Grid::Voltage(vec![0.5]);
    let iid = run_with_sink(&sc, &mut dream_suite::sim::report::NullSink).unwrap();
    for model in [
        FaultModelSpec::Burst { mean_run_len: 8.0 },
        FaultModelSpec::ColumnCorrelated { column_weight: 0.8 },
        FaultModelSpec::PerBankVoltage {
            bank_offsets: FaultModelSpec::bank_ramp(0.05),
        },
    ] {
        sc.fault.model = model.clone();
        let varied = run_with_sink(&sc, &mut dream_suite::sim::report::NullSink).unwrap();
        assert_ne!(
            iid.rows,
            varied.rows,
            "{} must shift the Monte-Carlo outcomes",
            model.kind_token()
        );
    }
}

#[test]
fn extends_inherits_the_preset_and_overrides_restated_fields() {
    // A fault-model variant of fig4 without restating the whole spec.
    let spec = r#"{
        "extends": "fig4",
        "name": "fig4-burst",
        "window": 512,
        "records": 1,
        "trials": 2,
        "apps": ["dwt"],
        "grid": {"axis": "voltage", "values": [0.5, 0.9]},
        "fault": {"model": {"kind": "burst", "mean_run_len": 8}}
    }"#;
    let sc = Scenario::from_json(spec).expect("extends spec parses");
    let base = registry::get("fig4", false).unwrap();
    // Overridden fields.
    assert_eq!(sc.name, "fig4-burst");
    assert_eq!(sc.window, 512);
    assert_eq!(sc.trials, 2);
    assert_eq!(sc.grid, Grid::Voltage(vec![0.5, 0.9]));
    assert_eq!(sc.fault.model, FaultModelSpec::Burst { mean_run_len: 8.0 });
    // Inherited fields, including the calibration under the partial
    // "fault" override.
    assert_eq!(sc.emts, base.emts);
    assert_eq!(sc.seed, base.seed);
    assert_eq!(sc.title, base.title);
    assert_eq!(sc.fault.nominal_v, base.fault.nominal_v);
    assert_eq!(
        sc.fault.log10_slope_per_volt,
        base.fault.log10_slope_per_volt
    );
    // And it runs.
    let outcome = run_with_sink(&sc, &mut dream_suite::sim::report::NullSink).unwrap();
    assert_eq!(outcome.rows.len(), 2 * sc.emts.len());

    // Unknown presets are named in the error.
    let err = Scenario::from_json(r#"{"extends": "fig9"}"#).unwrap_err();
    assert!(err.to_string().contains("fig9"), "{err}");
    // A bare extends with no overrides is the full preset.
    let plain = Scenario::from_json(r#"{"extends": "noise-sweep"}"#).unwrap();
    assert_eq!(plain, registry::get("noise-sweep", false).unwrap());
    // A variant that overrides fields without renaming itself would
    // silently overwrite the base preset's artifact — rejected.
    let err = Scenario::from_json(r#"{"extends": "fig4", "trials": 7}"#).unwrap_err();
    assert!(err.to_string().contains("name"), "{err}");
}

#[test]
fn append_jsonl_sink_accumulates_rows_across_runs() {
    let dir = std::env::temp_dir().join("dream_scenario_append_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resume.jsonl");
    let _ = std::fs::remove_file(&path);

    let sc = tiny("burst-sweep");
    let run_append = || {
        let mut sink = JsonlSink::append(&path).expect("append sink opens");
        let outcome = run_with_sink(&sc, &mut sink).expect("run");
        sink.finish().expect("flush");
        outcome
    };
    let first = run_append();
    let after_one = std::fs::read_to_string(&path).unwrap();
    assert_eq!(after_one.lines().count(), first.rows.len());
    let second = run_append();
    let after_two = std::fs::read_to_string(&path).unwrap();
    // The second campaign continued the artifact instead of truncating it.
    assert_eq!(
        after_two.lines().count(),
        first.rows.len() + second.rows.len()
    );
    assert!(after_two.starts_with(&after_one));

    // Spec-level validation: append demands jsonl and an out directory.
    let mut bad = sc.clone();
    bad.sink.append = true;
    bad.sink.format = dream_suite::sim::scenario::SinkFormat::Csv;
    bad.sink.out = Some(dir.display().to_string());
    assert!(bad.validate().is_err(), "append+csv must be rejected");
    bad.sink.format = dream_suite::sim::scenario::SinkFormat::Jsonl;
    bad.sink.out = None;
    assert!(
        bad.validate().is_err(),
        "append without out must be rejected"
    );
    bad.sink.out = Some(dir.display().to_string());
    bad.validate().expect("append+jsonl+out is valid");
}

/// The deprecated free functions must stay working shims over the runner
/// until their removal release.
#[test]
#[allow(deprecated)]
fn deprecated_run_shims_match_the_runner() {
    let sc = tiny("noise-sweep");
    let via_shim = dream_suite::sim::scenario::run(&sc).expect("shim runs");
    let via_runner = CampaignRunner::new(sc.clone())
        .run_discarding()
        .expect("runner runs");
    assert_eq!(via_shim.rows, via_runner.rows);

    let mut shim_sink = CsvSink::new(Vec::new());
    dream_suite::sim::scenario::run_with_sink(&sc, &mut shim_sink).expect("shim sink run");
    let mut runner_sink = CsvSink::new(Vec::new());
    CampaignRunner::new(sc)
        .run(&mut runner_sink)
        .expect("runner sink run");
    assert_eq!(shim_sink.into_inner(), runner_sink.into_inner());
}
