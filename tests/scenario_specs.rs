//! End-to-end spec-file coverage for the two post-paper scenarios:
//! `noise-sweep` and `geometry-sweep` must run from a registry name *and*
//! from a JSON spec file, through every sink format, with identical rows.

use dream_suite::sim::report::{CsvSink, JsonlSink, TableSink};
use dream_suite::sim::scenario::{registry, run_with_sink, Grid, Scenario};

/// Shrinks a smoke preset to seconds-scale for the differential runs.
fn tiny(preset: &str) -> Scenario {
    let mut sc = registry::get(preset, true).expect("preset exists");
    sc.records = 1;
    sc.trials = 1;
    sc.apps.truncate(1);
    match &mut sc.grid {
        Grid::NoiseScale(scales) => scales.truncate(2),
        Grid::MemoryWords(words) => words.truncate(2),
        _ => {}
    }
    sc
}

fn run_all_sinks(sc: &Scenario) -> (String, String, String) {
    let mut csv = CsvSink::new(Vec::new());
    run_with_sink(sc, &mut csv).expect("csv run");
    let mut jsonl = JsonlSink::new(Vec::new());
    run_with_sink(sc, &mut jsonl).expect("jsonl run");
    let mut table = TableSink::new(Vec::new());
    run_with_sink(sc, &mut table).expect("table run");
    (
        String::from_utf8(csv.into_inner()).unwrap(),
        String::from_utf8(jsonl.into_inner()).unwrap(),
        String::from_utf8(table.into_inner()).unwrap(),
    )
}

#[test]
fn new_scenarios_run_from_name_and_from_spec_file_identically() {
    for preset in ["noise-sweep", "geometry-sweep"] {
        let sc = tiny(preset);

        // Path A: the in-memory scenario (stand-in for `dream run <name>`).
        let (csv_a, jsonl_a, table_a) = run_all_sinks(&sc);
        assert!(!table_a.is_empty(), "{preset}: table sink rendered nothing");

        // Path B: serialize to a spec file on disk, re-parse, re-run —
        // the `dream run spec.json` path.
        let dir = std::env::temp_dir().join("dream_scenario_spec_e2e");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{preset}.json"));
        std::fs::write(&path, sc.to_json()).unwrap();
        let reparsed =
            Scenario::from_json(&std::fs::read_to_string(&path).unwrap()).expect("spec parses");
        assert_eq!(reparsed, sc, "{preset}: disk round-trip must be lossless");
        let (csv_b, jsonl_b, table_b) = run_all_sinks(&reparsed);

        assert_eq!(csv_a, csv_b, "{preset}: name-run and spec-run CSV differ");
        assert_eq!(
            jsonl_a, jsonl_b,
            "{preset}: name-run and spec-run JSONL differ"
        );
        assert_eq!(
            table_a, table_b,
            "{preset}: name-run and spec-run table differ"
        );

        // Sanity on the emitted formats.
        let expected_rows = sc.grid.len() * sc.emts.len() * sc.apps.len().max(1);
        assert_eq!(csv_a.lines().count(), 1 + expected_rows, "{preset} csv");
        assert_eq!(jsonl_a.lines().count(), expected_rows, "{preset} jsonl");
        for line in jsonl_a.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "{preset}: malformed JSONL line {line:?}"
            );
        }
    }
}

#[test]
fn table_sink_renders_scenario_rows() {
    let sc = tiny("geometry-sweep");
    let mut table = TableSink::new(Vec::new());
    let outcome = run_with_sink(&sc, &mut table).expect("table run");
    // The table is written to the underlying buffer on finish(); verify
    // through the outcome's row view instead of poking at the sink.
    assert!(!outcome.rows.is_empty());
    assert_eq!(outcome.headers[0], "words");
}
