//! End-to-end tests of the campaign service: a real `dream serve` worker
//! pool behind a real TCP socket, driven by the crate's own minimal HTTP
//! client.
//!
//! The two contracts under test are the ones the service exists for:
//!
//! 1. **Replay** — POSTing a spec whose artifact is complete streams the
//!    stored bytes verbatim (`X-Dream-Cache: hit`) without executing a
//!    single trial (the `/stats` trial counter stays put).
//! 2. **Resume** — a campaign interrupted mid-artifact (rows on disk, no
//!    completion marker, even a row cut mid-line) completes
//!    deterministically on the next POST: the streamed body is
//!    byte-identical to a never-interrupted run.

use std::path::PathBuf;

use dream_suite::serve::http::client_request;
use dream_suite::serve::{campaign_id, ServeConfig, Server, Store};
use dream_suite::sim::report::JsonlSink;
use dream_suite::sim::scenario::{registry, Scenario};
use dream_suite::CampaignRunner;

/// A seconds-scale campaign: fig2 smoke further shrunk.
fn smoke_spec() -> Scenario {
    let mut sc = registry::get("fig2", true).expect("preset exists");
    sc.records = 1;
    sc.trials = 1;
    sc.apps.truncate(1);
    sc
}

/// The offline reference artifact: what `dream run` would stream for the
/// same spec. The engine is deterministic at any thread count, so this is
/// the byte-exact expectation for every server response.
fn reference_jsonl(sc: &Scenario) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    CampaignRunner::new(sc.clone())
        .threads(2)
        .run(&mut sink)
        .expect("reference run");
    String::from_utf8(sink.into_inner()).expect("jsonl is UTF-8")
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dream_serve_e2e_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(store_dir: PathBuf) -> String {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir,
        workers: 2,
        threads: 2,
        ..ServeConfig::default()
    })
    .expect("server binds");
    server.spawn().to_string()
}

fn stats_json(addr: &str) -> String {
    let response = client_request(addr, "GET", "/stats", b"").expect("GET /stats");
    assert_eq!(response.status, 200);
    String::from_utf8(response.body).expect("stats are UTF-8")
}

/// Extracts `"key": <number>` from a flat stats/status JSON object.
fn json_number(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {body}"))
        + needle.len();
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric stat")
}

#[test]
fn repeat_posts_replay_from_the_store_without_rerunning_trials() {
    let sc = smoke_spec();
    let want = reference_jsonl(&sc);
    let addr = boot(temp_store("replay"));
    let payload = sc.to_json();

    // The registry is served.
    let presets = client_request(&addr, "GET", "/presets", b"").expect("GET /presets");
    assert_eq!(presets.status, 200);
    assert!(String::from_utf8(presets.body)
        .unwrap()
        .contains("\"fig2\""));

    // First POST executes the campaign and streams the artifact.
    let first = client_request(&addr, "POST", "/campaigns", payload.as_bytes()).expect("POST 1");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-dream-cache"), Some("miss"));
    assert_eq!(
        first.header("x-campaign-id"),
        Some(campaign_id(&sc).as_str())
    );
    assert_eq!(
        String::from_utf8(first.body.clone()).unwrap(),
        want,
        "served rows must be byte-identical to the offline run"
    );

    let after_first = stats_json(&addr);
    let trials_after_first = json_number(&after_first, "trials_executed");
    assert_eq!(
        trials_after_first,
        sc.flatten().len() as u64,
        "first run executes the full flattened campaign"
    );

    // The status endpoint agrees the artifact is complete.
    let id = campaign_id(&sc);
    let status = client_request(&addr, "GET", &format!("/campaigns/{id}"), b"").expect("status");
    let status_body = String::from_utf8(status.body).unwrap();
    assert!(status_body.contains("\"complete\""), "{status_body}");
    assert_eq!(
        json_number(&status_body, "rows") as usize,
        want.lines().count()
    );

    // Second POST is a byte-identical replay with zero trials re-run.
    let second = client_request(&addr, "POST", "/campaigns", payload.as_bytes()).expect("POST 2");
    assert_eq!(second.header("x-dream-cache"), Some("hit"));
    assert_eq!(second.body, first.body, "replay must be byte-identical");
    let after_second = stats_json(&addr);
    assert_eq!(
        json_number(&after_second, "trials_executed"),
        trials_after_first,
        "a cache hit must not execute trials"
    );
    assert_eq!(json_number(&after_second, "cache_hits"), 1);

    // The rows endpoint serves the same artifact.
    let rows = client_request(&addr, "GET", &format!("/campaigns/{id}/rows"), b"").expect("rows");
    assert_eq!(rows.body, first.body);

    // Bad specs are client errors, not server faults.
    let bad = client_request(&addr, "POST", "/campaigns", b"{\"kind\": \"warp-drive\"}")
        .expect("bad POST");
    assert_eq!(bad.status, 400);
    assert!(String::from_utf8(bad.body).unwrap().contains("error"));

    // So is a sink the service cannot honor — same grammar as `--sink`.
    let csv =
        client_request(&addr, "POST", "/campaigns?sink=csv", payload.as_bytes()).expect("csv POST");
    assert_eq!(csv.status, 400);
    let jsonl = client_request(&addr, "POST", "/campaigns?sink=jsonl", payload.as_bytes())
        .expect("jsonl POST");
    assert_eq!(jsonl.status, 200);
}

#[test]
fn interrupted_campaigns_resume_to_a_byte_identical_artifact() {
    let sc = smoke_spec();
    let want = reference_jsonl(&sc);
    let id = campaign_id(&sc);

    // Simulate a campaign killed mid-flight: the spec is on disk, the
    // artifact holds a prefix of the rows, the final line is cut mid-write,
    // and there is no completion marker.
    let store_dir = temp_store("resume");
    let store = Store::open(&store_dir).expect("store opens");
    store.begin(&id, &sc).expect("begin");
    let lines: Vec<&str> = want.lines().collect();
    assert!(
        lines.len() >= 4,
        "need enough rows to interrupt meaningfully"
    );
    let keep = lines.len() / 2;
    let mut partial: String = lines[..keep]
        .iter()
        .map(|line| format!("{line}\n"))
        .collect();
    partial.push_str(&lines[keep][..lines[keep].len() / 2]); // ragged tail
    std::fs::write(store.rows_path(&id), &partial).expect("seed partial artifact");
    assert!(!store.is_complete(&id));

    // A fresh server (post-crash restart) resumes it on POST: the ragged
    // line is truncated, the surviving prefix is skipped instead of
    // re-emitted, and the remainder is appended deterministically.
    let addr = boot(store_dir);
    let response =
        client_request(&addr, "POST", "/campaigns", sc.to_json().as_bytes()).expect("POST");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("x-dream-cache"), Some("miss"));
    assert_eq!(
        String::from_utf8(response.body).unwrap(),
        want,
        "resumed artifact must match a never-interrupted run byte for byte"
    );
    assert!(store.is_complete(&id), "resume must finish the artifact");
    assert_eq!(
        std::fs::read_to_string(store.rows_path(&id)).unwrap(),
        want,
        "the on-disk artifact must also be byte-identical"
    );

    // And the stats show the resume only paid for one (partial) run's
    // worth of bookkeeping — one campaign execution, no cache hit.
    let stats = stats_json(&addr);
    assert_eq!(json_number(&stats, "campaigns_run"), 1);
    assert_eq!(json_number(&stats, "cache_hits"), 0);

    // A restarted server preloads the completed artifact: replay works
    // without the original process.
    let addr2 = boot_existing(&store);
    let replay =
        client_request(&addr2, "POST", "/campaigns", sc.to_json().as_bytes()).expect("replay");
    assert_eq!(replay.header("x-dream-cache"), Some("hit"));
    assert_eq!(String::from_utf8(replay.body).unwrap(), want);
}

/// Boots a server over an existing store directory (no cleanup).
fn boot_existing(store: &Store) -> String {
    boot_existing_dir(store.root().to_path_buf())
}

fn boot_existing_dir(dir: PathBuf) -> String {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: dir,
        workers: 1,
        threads: 2,
        ..ServeConfig::default()
    })
    .expect("server binds");
    server.spawn().to_string()
}
