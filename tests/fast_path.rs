//! The clean-word fast path must be unobservable: forcing the full
//! decoder on every read has to reproduce campaign outputs, CSV bytes and
//! access statistics bit for bit. These differential tests pin that
//! contract at fig2 scale and on fig4-style mid-BER fault maps.

use std::sync::{Mutex, PoisonError};

use dream_suite::core::{force_full_decode, EmtKind, ProtectedMemory};
use dream_suite::dsp::AppKind;
use dream_suite::ecg::Database;
use dream_suite::mem::{BerModel, FaultMap};
use dream_suite::sim::campaign::{banked_geometry, ProtectedStorage};
use dream_suite::sim::fig2::{run_fig2, Fig2Config};
use dream_suite::sim::fig4::{run_fig4, Fig4Config};

/// Serializes tests that flip the process-wide fast-path kill switch.
static TOGGLE_LOCK: Mutex<()> = Mutex::new(());

fn with_full_decode<R>(f: impl FnOnce() -> R) -> R {
    /// Restores the flag even when `f` panics, so a failing assertion
    /// doesn't leave the process-wide switch set for sibling tests.
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            force_full_decode(false);
        }
    }
    let _restore = Restore;
    force_full_decode(true);
    f()
}

/// A fig2-sized campaign produces bit-identical rows — and therefore
/// byte-identical CSV output (formatted exactly as the `fig2` binary
/// does) — with the fast path force-disabled.
#[test]
fn fig2_campaign_and_csv_identical_without_fast_path() {
    let _guard = TOGGLE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let cfg = Fig2Config {
        window: 512,
        records: 2,
        apps: vec![AppKind::Dwt, AppKind::WaveletDelineation],
        fault_trials: 2,
    };
    let fast = run_fig2(&cfg);
    let slow = with_full_decode(|| run_fig2(&cfg));
    assert_eq!(fast.len(), slow.len());
    for (f, s) in fast.iter().zip(&slow) {
        assert_eq!(f.app, s.app);
        assert_eq!(f.stuck, s.stuck);
        assert_eq!(f.bit, s.bit);
        assert_eq!(
            f.snr_db.to_bits(),
            s.snr_db.to_bits(),
            "{} {:?} bit {}: {} vs {}",
            f.app,
            f.stuck,
            f.bit,
            f.snr_db,
            s.snr_db
        );
    }
    // The exact row formatting the fig2 binary writes to results/*.csv.
    let csv = |rows: &[dream_suite::sim::fig2::Fig2Row]| -> String {
        rows.iter()
            .map(|r| format!("{},{:?},{},{:.3}\n", r.app, r.stuck, r.bit, r.snr_db))
            .collect()
    };
    assert_eq!(csv(&fast), csv(&slow));
}

/// A fig4 voltage sweep — where mid-range BERs mix clean and faulty words
/// and all four outcome counters move — is identical too, including the
/// stats-derived corrected/uncorrectable rates.
#[test]
fn fig4_sweep_identical_without_fast_path() {
    let _guard = TOGGLE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let cfg = Fig4Config {
        window: 512,
        runs: 3,
        voltages: vec![0.55, 0.65, 0.8],
        apps: vec![AppKind::Dwt],
        ..Default::default()
    };
    let fast = run_fig4(&cfg);
    let slow = with_full_decode(|| run_fig4(&cfg));
    assert_eq!(fast.len(), slow.len());
    for (f, s) in fast.iter().zip(&slow) {
        assert_eq!(f.mean_snr_db.to_bits(), s.mean_snr_db.to_bits(), "{f:?}");
        assert_eq!(f.min_snr_db.to_bits(), s.min_snr_db.to_bits(), "{f:?}");
        assert_eq!(
            f.uncorrectable_rate.to_bits(),
            s.uncorrectable_rate.to_bits(),
            "{f:?}"
        );
        assert_eq!(
            f.corrected_rate.to_bits(),
            s.corrected_rate.to_bits(),
            "{f:?}"
        );
    }
}

/// Single mid-BER trial, per EMT: output words and the full `AccessStats`
/// (reads, writes, corrected, uncorrectable) match with the per-instance
/// fast-path toggle off.
#[test]
fn mid_ber_trial_has_identical_output_and_stats() {
    let _guard = TOGGLE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let app = AppKind::Dwt.instantiate(512);
    let geometry = banked_geometry(app.memory_words());
    let ber = BerModel::date16().ber(0.6); // mid-range voltage
    let map = FaultMap::generate(geometry.words(), 22, ber, 0xFA57);
    let record = Database::record(100, 512);
    for kind in EmtKind::all() {
        let run = |fast_path: bool| {
            let mut mem = ProtectedMemory::with_fault_map(kind, geometry, &map);
            mem.set_fast_path(fast_path);
            let out = {
                let mut storage = ProtectedStorage::new(&mut mem);
                app.run(&record.samples, &mut storage)
            };
            (out, mem.stats())
        };
        let (out_fast, stats_fast) = run(true);
        let (out_slow, stats_slow) = run(false);
        assert_eq!(out_fast, out_slow, "{kind}");
        assert_eq!(stats_fast, stats_slow, "{kind}");
        assert!(stats_fast.reads > 0 && stats_fast.writes > 0, "{kind}");
    }
}
