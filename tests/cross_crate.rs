//! Cross-crate contract tests: the seams between substrates that no single
//! crate's unit tests can see.

use dream_suite::core::{AccessStats, EmtKind, EnergyModelBundle, ProtectedMemory};
use dream_suite::dsp::{AppKind, WordStorage};
use dream_suite::ecg::{Adc, Database, EcgSynth, NoiseModel, Pathology};
use dream_suite::fixed::Q15;
use dream_suite::mem::{AddressScrambler, BerModel, FaultMap, MemGeometry};
use dream_suite::soc::{Crossbar, MemoryPort, SocConfig};

/// The fault map shared across EMTs really is the same physical pattern:
/// the 16-bit view of the 22-bit map equals the raw lanes every codec sees.
#[test]
fn shared_fault_map_views_agree() {
    let geometry = MemGeometry::inyu_data_memory();
    let wide = FaultMap::generate(geometry.words(), 22, 2e-3, 9);
    let narrow = wide.with_width(16);
    for w in (0..geometry.words()).step_by(97) {
        assert_eq!(narrow.stuck_mask(w), wide.stuck_mask(w) & 0xFFFF);
        assert_eq!(narrow.stuck_values(w), wide.stuck_values(w) & 0xFFFF);
    }
    // The ECC view keeps the extra lanes: more cells at risk (§VI-B's
    // flip side of in-array redundancy).
    assert!(wide.fault_count() >= narrow.fault_count());
}

/// `Q15::sign_run` (the DSP-side view) and `Dream::protected_bits` (the
/// codec-side view) describe the same hardware quantity.
#[test]
fn sign_run_and_protected_bits_are_consistent() {
    use dream_suite::core::Dream;
    for raw in [-32768i16, -4097, -1, 0, 1, 255, 4096, 32767] {
        let run = Q15::from_raw(raw).sign_run();
        let protected = Dream::protected_bits(raw);
        assert_eq!(protected, (run + 1).min(16), "raw {raw}");
    }
}

/// The whole ECG chain — synthesizer, noise, ADC — produces samples the
/// memory substrate can hold and DREAM can exploit.
#[test]
fn ecg_chain_feeds_the_memory_model() {
    let mut synth = EcgSynth::new(Pathology::AtrialFibrillation, 360.0, 5);
    let wave = synth.generate_mv(720);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let noisy = NoiseModel::date16().apply(&wave, 360.0, &mut rng);
    let samples = Adc::date16().quantize_all(&noisy);
    let geometry = MemGeometry::new(720 + 16, 16, 16);
    let mut mem = ProtectedMemory::new(EmtKind::Dream, geometry);
    for (i, &s) in samples.iter().enumerate() {
        mem.write(i, s);
    }
    for (i, &s) in samples.iter().enumerate() {
        assert_eq!(mem.read(i), s);
    }
    let stats: AccessStats = mem.stats();
    assert_eq!(stats.writes as usize, samples.len());
}

/// A scrambled faulty memory still round-trips every word (the bijection
/// holds under the fault overlay plumbing).
#[test]
fn scrambler_composes_with_faulty_memory() {
    let geometry = MemGeometry::new(256, 16, 16);
    let mut sram = dream_suite::mem::FaultySram::new(geometry);
    sram.set_scrambler(AddressScrambler::new(256, 0x5CA2));
    for a in 0..256 {
        sram.write(a, a as u32 * 3);
    }
    for a in 0..256 {
        assert_eq!(sram.read(a), a as u32 * 3);
    }
}

/// Ports, traces and the crossbar agree on access counts with the
/// protected memory's own statistics.
#[test]
fn trace_lengths_match_access_stats() {
    let config = SocConfig::inyu();
    let mut mem = ProtectedMemory::new(EmtKind::EccSecDed, config.geometry);
    let record = Database::record(100, 256);
    let app = AppKind::CompressedSensing.instantiate(256);
    let trace = {
        let mut port = MemoryPort::new(&mut mem, config.geometry, 0, app.memory_words(), 1);
        let _ = app.run(&record.samples, &mut port);
        port.into_trace()
    };
    let stats = mem.stats();
    assert_eq!(trace.len() as u64, stats.accesses());
    let xbar = Crossbar::simulate(config.geometry.banks(), &[trace]);
    assert_eq!(
        xbar.bank_accesses.iter().sum::<u64>(),
        stats.accesses(),
        "every traced access must be served exactly once"
    );
}

/// Pricing is monotone across the stack: more accesses cost more energy at
/// every voltage, for every codec.
#[test]
fn energy_monotone_in_access_count() {
    let bundle = EnergyModelBundle::date16();
    for emt in EmtKind::all() {
        let codec = emt.codec();
        let small = AccessStats {
            reads: 100,
            writes: 50,
            ..Default::default()
        };
        let big = AccessStats {
            reads: 1000,
            writes: 500,
            ..Default::default()
        };
        for v in BerModel::paper_voltages() {
            let e_small = bundle.run_energy(&codec, &small, 1024, v, 1e-4);
            let e_big = bundle.run_energy(&codec, &big, 1024, v, 1e-4);
            assert!(e_big.total_pj() > e_small.total_pj(), "{emt} at {v} V");
        }
    }
}

/// `WordStorage` adapters across crates expose identical semantics: the
/// sim adapter and the soc port write the same protected memory state.
#[test]
fn storage_adapters_agree() {
    let geometry = MemGeometry::new(64, 16, 16);
    let map = FaultMap::generate(64, 22, 0.01, 4);

    let mut via_port = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry, &map);
    {
        let mut port = MemoryPort::new(&mut via_port, geometry, 0, 64, 1);
        for i in 0..64 {
            port.write(i, (i as i16) - 32);
        }
    }

    let mut via_sim = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry, &map);
    {
        let mut storage = dream_suite::sim::campaign::ProtectedStorage::new(&mut via_sim);
        for i in 0..64 {
            storage.write(i, (i as i16) - 32);
        }
    }

    for i in 0..64 {
        assert_eq!(via_port.read(i), via_sim.read(i), "word {i}");
    }
}

/// Workspace-wiring smoke test: the `dream-suite` façade must keep
/// re-exporting all eight member crates, and one public item from each must
/// stay reachable through the façade path. If a re-export is dropped from
/// `src/lib.rs` (or a crate is unplugged from the workspace), this fails to
/// compile — which is the point.
#[test]
fn facade_reexports_are_complete() {
    // core — the DREAM technique itself.
    assert_eq!(dream_suite::core::extra_bits_per_word(16), 5);
    // fixed — Q15 arithmetic.
    assert_eq!(dream_suite::fixed::Q15::from_f64(0.5).to_f64(), 0.5);
    // ecg — the synthetic record suite.
    let record = dream_suite::ecg::Database::record(100, 64);
    assert_eq!(record.samples.len(), 64);
    // mem — the voltage/BER characterization.
    let ber = dream_suite::mem::BerModel::date16();
    assert!(ber.ber(0.5) > ber.ber(0.9));
    // energy — the CACTI-like SRAM macro model.
    let sram = dream_suite::energy::SramEnergyModel::date16_main();
    assert!(sram.access_energy_pj(16, 0.9) > 0.0);
    // dsp — the five applications plus the SNR metric (Formula 1).
    assert_eq!(dream_suite::dsp::AppKind::all().len(), 5);
    assert!(dream_suite::dsp::snr_db(&[1.0, -1.0], &[1.0, -1.0]).is_infinite());
    // soc — the INYU platform preset.
    let config = dream_suite::soc::SocConfig::inyu();
    assert_eq!(config.geometry.banks(), 16);
    // sim — the experiment drivers' configuration types.
    let fig2 = dream_suite::sim::fig2::Fig2Config::default();
    assert_eq!(fig2.window, 1024);
    let energy_cfg = dream_suite::sim::energy_table::EnergyConfig::default();
    assert!(!energy_cfg.voltages.is_empty());
}
