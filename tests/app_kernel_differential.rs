//! Differential pins for the SWAR-restructured Q15 application kernels
//! (matrix-filter GEMM rows, DWT spline taps, morphological sliding
//! extremes): outputs must be byte-identical to the sequential
//! formulations they replaced, and the *exact* number of memory accesses
//! each application performs is pinned — the fault-injection methodology
//! counts every read against the faulty array, so an "optimization" that
//! changes access counts silently changes the paper's exposure model.

use dream_dsp::{BiomedicalApp, Dwt, MatrixFilter, MorphologicalFilter, VecStorage, WordStorage};
use dream_fixed::{Acc32, Q15};

/// Word storage that counts every read and write. Only the per-word
/// methods are implemented, so the trait's default block transfers
/// decompose into counted per-word accesses — running an app against this
/// both tallies its accesses and checks the block paths against the
/// word-at-a-time semantics they promise.
struct CountingStorage {
    words: Vec<i16>,
    reads: u64,
    writes: u64,
}

impl CountingStorage {
    fn new(words: usize) -> Self {
        CountingStorage {
            words: vec![0; words],
            reads: 0,
            writes: 0,
        }
    }
}

impl WordStorage for CountingStorage {
    fn len(&self) -> usize {
        self.words.len()
    }

    fn read(&mut self, addr: usize) -> i16 {
        self.reads += 1;
        self.words[addr]
    }

    fn write(&mut self, addr: usize, value: i16) {
        self.writes += 1;
        self.words[addr] = value;
    }
}

/// A deterministic pseudo-random Q15 signal covering both signs and the
/// format extremes.
fn signal(n: usize, seed: u64) -> Vec<i16> {
    let mut state = seed | 1;
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match i % 97 {
                0 => i16::MIN,
                1 => i16::MAX,
                _ => (state >> 33) as i16,
            }
        })
        .collect()
}

/// Runs `app` against a counting storage and a plain [`VecStorage`],
/// asserting identical outputs (block ops ≡ word ops), then returns the
/// output and the (reads, writes) tally.
fn run_counted(app: &dyn BiomedicalApp, input: &[i16]) -> (Vec<i16>, u64, u64) {
    let mut counted = CountingStorage::new(app.memory_words());
    let out = app.run(input, &mut counted);
    let mut plain = VecStorage::new(app.memory_words());
    assert_eq!(
        out,
        app.run(input, &mut plain),
        "{}: block-transfer output differs from word-at-a-time",
        app.name()
    );
    (out, counted.reads, counted.writes)
}

#[test]
fn matrix_filter_gemm_matches_sequential_mac_fold_and_access_counts() {
    let (dim, windows, iterations) = (32usize, 4usize, 2u32);
    let app = MatrixFilter::new(dim, windows, iterations);
    let input = signal(dim * windows, 0x5eed_0001);
    let (out, reads, writes) = run_counted(&app, &input);

    // The sequential specification: replay the exact buffer traffic with a
    // word-at-a-time `Acc32::mac` fold (the formulation the SWAR dot
    // product replaced) on an independent plain array.
    let mut words = vec![0i16; app.memory_words()];
    let mut spec_mem = VecStorage::new(app.memory_words());
    let spec_out = app.run(&input, &mut spec_mem);
    words.copy_from_slice(spec_mem.as_slice());
    let a_base = 0usize;
    let b_base = dim * dim;
    let c_base = b_base + dim * windows;
    // Recompute the final multiply from the penultimate buffer using the
    // sequential fold and compare element-wise: the last iteration's
    // source is whichever of B/C the double buffer left as stale input.
    let (src, dst) = if iterations % 2 == 1 {
        (b_base, c_base)
    } else {
        (c_base, b_base)
    };
    for col in 0..windows {
        for r in 0..dim {
            let mut acc = Acc32::ZERO;
            for c in 0..dim {
                acc = acc.mac(
                    Q15::from_raw(words[a_base + r * dim + c]),
                    Q15::from_raw(words[src + col * dim + c]),
                );
            }
            assert_eq!(
                words[dst + col * dim + r],
                acc.to_q15(dream_fixed::Rounding::Nearest).raw(),
                "GEMM output ({r}, {col}) diverged from the sequential fold"
            );
        }
    }
    assert_eq!(out, spec_out);

    // Exact access counts: every output element re-reads a full A row and
    // a full B column (2·dim reads), per column, per iteration; writes are
    // the A/B setup plus one result column per (iteration, column).
    let iters = iterations as u64;
    let (dim64, cols) = (dim as u64, windows as u64);
    assert_eq!(reads, iters * cols * dim64 * 2 * dim64 + dim64 * cols);
    assert_eq!(writes, dim64 * dim64 + dim64 * cols + iters * cols * dim64);
}

#[test]
fn dwt_access_counts_are_pinned() {
    let (n, scales) = (256usize, 4u32);
    let app = Dwt::new(n, scales);
    let input = signal(n, 0x5eed_0002);
    let (_, reads, writes) = run_counted(&app, &input);
    let (n64, s64) = (n as u64, u64::from(scales));
    // Per scale: high-pass reads 2 taps and writes its detail, low-pass
    // reads 4 taps and writes the next approximation; then the final
    // approximation copy and the full output load.
    assert_eq!(reads, s64 * 6 * n64 + n64 + (s64 + 1) * n64);
    assert_eq!(writes, n64 + s64 * 2 * n64 + n64);
}

#[test]
fn morpho_access_counts_are_pinned() {
    let n = 512usize;
    let app = MorphologicalFilter::new(n, 360.0);
    let input = signal(n, 0x5eed_0003);
    let (_, reads, writes) = run_counted(&app, &input);
    let n64 = n as u64;
    // Eight sliding extremes (each one block read + one block write),
    // the opening/closing average, the baseline subtraction, and the
    // output load.
    assert_eq!(reads, 8 * n64 + 2 * n64 + 2 * n64 + n64);
    assert_eq!(writes, n64 + 8 * n64 + n64 + n64);
}

#[test]
fn sliding_extreme_wedge_handles_long_elements() {
    // The baseline structuring elements (73 and 109 samples at 360 Hz)
    // exercise the wedge far beyond the denoising window; pin the result
    // against a naive windowed scan.
    let n = 300usize;
    let x = signal(n, 0x5eed_0004);
    let app = MorphologicalFilter::new(n, 360.0);
    let mut mem = VecStorage::new(app.memory_words());
    let out = app.run(&x, &mut mem);
    let reference: Vec<f64> = app.run_reference(&x);
    for (i, (&got, want)) in out.iter().zip(&reference).enumerate() {
        let err = (f64::from(got) - want).abs();
        // Min/max are exact in both domains; the /2 average and the final
        // clamp contribute at most one LSB plus saturation at the rails.
        let saturated = got == i16::MAX || got == i16::MIN;
        assert!(err <= 1.0 || saturated, "sample {i}: {got} vs {want}");
    }
}
