//! The campaign executor's contract: output is bit-identical whatever the
//! worker count, and the flattened trial indexing never makes two trials
//! share a fault seed.

use std::collections::HashSet;
use std::sync::Mutex;

use dream_suite::dsp::AppKind;
use dream_suite::sim::campaign::fault_seed;
use dream_suite::sim::exec;
use dream_suite::sim::fig2::{run_fig2, Fig2Config};
use dream_suite::sim::fig4::{run_fig4, Fig4Config};
use proptest::prelude::*;

/// Serializes tests that pin the process-wide thread override.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    exec::set_thread_override(Some(n));
    let r = f();
    exec::set_thread_override(None);
    r
}

/// `DREAM_THREADS=1` and `DREAM_THREADS=4` must yield the same `Fig2Row`s
/// down to the last mantissa bit: same rows, same order, exact f64
/// equality (not approximate).
#[test]
fn fig2_rows_identical_serial_vs_parallel() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    let cfg = Fig2Config {
        window: 512,
        records: 2,
        apps: vec![AppKind::Dwt, AppKind::CompressedSensing],
        fault_trials: 2,
    };
    let serial = with_threads(1, || run_fig2(&cfg));
    let parallel = with_threads(4, || run_fig2(&cfg));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.app, p.app);
        assert_eq!(s.stuck, p.stuck);
        assert_eq!(s.bit, p.bit);
        assert_eq!(
            s.snr_db.to_bits(),
            p.snr_db.to_bits(),
            "{} {:?} bit {}: {} vs {}",
            s.app,
            s.stuck,
            s.bit,
            s.snr_db,
            p.snr_db
        );
    }
}

/// Same contract for the Fig. 4 voltage sweep, including the min/rate
/// fields that fold over runs.
#[test]
fn fig4_points_identical_serial_vs_parallel() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    let cfg = Fig4Config {
        window: 512,
        runs: 5,
        voltages: vec![0.5, 0.7, 0.9],
        apps: vec![AppKind::Dwt],
        ..Default::default()
    };
    let serial = with_threads(1, || run_fig4(&cfg));
    let parallel = with_threads(4, || run_fig4(&cfg));
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.app, p.app);
        assert_eq!(s.emt, p.emt);
        assert_eq!(s.voltage.to_bits(), p.voltage.to_bits());
        assert_eq!(s.mean_snr_db.to_bits(), p.mean_snr_db.to_bits(), "{s:?}");
        assert_eq!(s.min_snr_db.to_bits(), p.min_snr_db.to_bits(), "{s:?}");
        assert_eq!(
            s.uncorrectable_rate.to_bits(),
            p.uncorrectable_rate.to_bits()
        );
        assert_eq!(s.corrected_rate.to_bits(), p.corrected_rate.to_bits());
    }
}

/// With no override pinned, `thread_count` resolves through the
/// `DREAM_THREADS` environment variable (CI runs this suite with
/// `DREAM_THREADS=2` to exercise exactly this path).
#[test]
fn thread_count_honors_environment() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    exec::set_thread_override(None);
    // Whatever the ambient variable says must be what campaigns get…
    if let Ok(raw) = std::env::var(exec::THREADS_ENV) {
        let expect: usize = raw.trim().parse().expect("DREAM_THREADS is an integer");
        assert_eq!(exec::thread_count(), expect);
    }
    // …and an explicit value must round-trip through the resolution path.
    let ambient = std::env::var(exec::THREADS_ENV).ok();
    std::env::set_var(exec::THREADS_ENV, "3");
    assert_eq!(exec::thread_count(), 3);
    match ambient {
        Some(v) => std::env::set_var(exec::THREADS_ENV, v),
        None => std::env::remove_var(exec::THREADS_ENV),
    }
}

/// The executor preserves trial order regardless of the schedule.
#[test]
fn executor_results_stay_in_trial_order() {
    let _guard = OVERRIDE_LOCK.lock().expect("override lock");
    let trials: Vec<u64> = (0..503).collect();
    let expect: Vec<u64> = trials.iter().map(|t| t.wrapping_mul(0x9E37)).collect();
    for threads in [1, 2, 4, 7] {
        let got = with_threads(threads, || {
            exec::run_trials(&trials, || (), |(), &t, _| t.wrapping_mul(0x9E37))
        });
        assert_eq!(got, expect, "{threads} threads");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under the flattened trial indexing every (point, run) pair of a
    /// campaign grid still draws a distinct fault seed — no collisions
    /// within a campaign, whatever its base seed.
    #[test]
    fn fault_seed_stays_collision_free_when_flattened(
        base in any::<u64>(),
        points in 1usize..40,
        runs in 1usize..40,
    ) {
        let mut seen = HashSet::new();
        for flat in 0..points * runs {
            // The executor hands workers a flat index; runners derive the
            // (point, run) coordinates exactly like this.
            let seed = fault_seed(base, flat / runs, flat % runs);
            prop_assert!(seen.insert(seed), "collision at flat index {}", flat);
        }
    }

    /// Two campaigns with different base seeds share no seeds on the same
    /// grid (so figures never accidentally correlate their fault draws).
    #[test]
    fn distinct_base_seeds_do_not_collide(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let sa: HashSet<u64> = (0..16).flat_map(|p| (0..16).map(move |r| fault_seed(a, p, r))).collect();
        for p in 0..16 {
            for r in 0..16 {
                prop_assert!(!sa.contains(&fault_seed(b, p, r)));
            }
        }
    }
}
