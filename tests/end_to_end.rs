//! End-to-end integration: the full stack (ECG → application → SoC →
//! protected faulty memory → SNR/energy) wired together the way the
//! experiment harness uses it.

use dream_suite::core::{EmtKind, EnergyModelBundle};
use dream_suite::dsp::{samples_to_f64, snr_db, AppKind, VecStorage};
use dream_suite::ecg::Database;
use dream_suite::mem::{BerModel, FaultMap};
use dream_suite::soc::{Soc, SocConfig};

/// Every application, on every EMT, over a clean memory, must reproduce
/// exactly the plain-storage output — the platform is transparent when no
/// faults are present.
#[test]
fn clean_platform_is_transparent_for_all_apps_and_emts() {
    let window = 512;
    let record = Database::record(100, window);
    for app_kind in AppKind::all() {
        let app = app_kind.instantiate(window);
        let mut plain = VecStorage::new(app.memory_words());
        let expect = app.run(&record.samples, &mut plain);
        for emt in EmtKind::all() {
            let mut soc = Soc::new(SocConfig::inyu(), emt, None);
            let run = soc.run_app(&*app, &record.samples);
            assert_eq!(run.output(), &expect[..], "{app_kind} under {emt}");
        }
    }
}

/// The same fault map must yield bit-identical results across repeated
/// executions — the determinism the 200-run campaigns rely on.
#[test]
fn fault_injection_is_deterministic() {
    let window = 512;
    let record = Database::record(103, window);
    let config = SocConfig::inyu();
    let map = FaultMap::generate(config.geometry.words(), 22, 1e-3, 77);
    let app = AppKind::Dwt.instantiate(window);
    let mut outputs = Vec::new();
    for _ in 0..2 {
        let mut soc = Soc::new(config, EmtKind::Dream, Some(&map));
        outputs.push(soc.run_app(&*app, &record.samples).output().to_vec());
    }
    assert_eq!(outputs[0], outputs[1]);
}

/// Quality ordering at a mid-scale voltage: protected runs are at least as
/// good as unprotected ones on the *same* fault map, for every application.
#[test]
fn protection_never_hurts_quality() {
    let window = 512;
    let voltage = 0.6;
    let ber = BerModel::date16().ber(voltage);
    let config = SocConfig::inyu();
    for app_kind in AppKind::all() {
        let app = app_kind.instantiate(window);
        for run_idx in 0..3u64 {
            let record = Database::record(100 + run_idx as u16, window);
            let reference = app.run_reference(&record.samples);
            let map = FaultMap::generate(config.geometry.words(), 22, ber, 1000 + run_idx);
            let snr_of = |emt: EmtKind| {
                let mut soc = Soc::new(config, emt, Some(&map));
                let run = soc.run_app(&*app, &record.samples);
                snr_db(&reference, &samples_to_f64(run.output())).min(120.0)
            };
            let none = snr_of(EmtKind::None);
            let dream = snr_of(EmtKind::Dream);
            // DREAM only ever rebuilds MSBs from reliable side data, so it
            // can lose to raw storage only through faults raw storage also
            // sees; allow a tiny tolerance for the rare case where a fault
            // lands in ECC-lane cells that raw storage does not use.
            assert!(
                dream >= none - 1.0,
                "{app_kind} run {run_idx}: DREAM {dream:.1} vs none {none:.1}"
            );
        }
    }
}

/// Energy accounting is self-consistent across the stack: pricing a run
/// through the SoC equals pricing its stats through the bundle directly.
#[test]
fn soc_energy_matches_direct_pricing() {
    let window = 512;
    let record = Database::record(100, window);
    let app = AppKind::MorphologicalFilter.instantiate(window);
    let bundle = EnergyModelBundle::date16();
    let mut soc = Soc::new(SocConfig::inyu(), EmtKind::Dream, None);
    let run = soc.run_app(&*app, &record.samples);
    let via_soc = soc.energy(&run, &bundle, 0.7);
    let direct = bundle.run_energy(
        soc.memory().codec(),
        &run.stats,
        soc.memory().words(),
        0.7,
        SocConfig::inyu().seconds(run.cycles),
    );
    assert_eq!(via_soc, direct);
    assert!(via_soc.total_pj() > 0.0);
}

/// A multi-core workload shares one protected memory: both cores' outputs
/// are correct and the interconnect reports the contention.
#[test]
fn dual_core_pipeline_runs_both_apps() {
    let window = 512;
    let record = Database::record(101, window);
    let cs = AppKind::CompressedSensing.instantiate(window);
    let morpho = AppKind::MorphologicalFilter.instantiate(window);
    let mut soc = Soc::new(SocConfig::inyu(), EmtKind::Dream, None);
    let run = soc.run_apps(&[(&*cs, &record.samples), (&*morpho, &record.samples)]);
    assert_eq!(run.outputs[0].len(), cs.output_len());
    assert_eq!(run.outputs[1].len(), morpho.output_len());
    let mut plain = VecStorage::new(cs.memory_words());
    assert_eq!(run.outputs[0], cs.run(&record.samples, &mut plain));
    assert!(run.crossbar.bank_accesses.iter().sum::<u64>() > 0);
}
