//! Property-based integration tests: the correction guarantees of §IV hold
//! through the full storage stack (protected memory over faulty SRAM), not
//! just at the codec level — and the pluggable fault models keep the
//! deterministic, allocation-free, calibrated contract campaigns rely on.

use dream_suite::core::{Dream, EmtKind, ProtectedMemory};
use dream_suite::mem::{BerModel, FaultMap, FaultModel, MemGeometry, StuckAt};
use proptest::prelude::*;

fn geometry() -> MemGeometry {
    MemGeometry::new(64, 16, 16)
}

/// Builds one of the four fault models from a variant selector and two
/// generic parameter draws (each mapped into the variant's legal range).
fn model_from(variant: usize, ber: f64, shape: f64) -> FaultModel {
    match variant % 4 {
        0 => FaultModel::Iid { ber },
        1 => FaultModel::Burst {
            ber,
            mean_run_len: 1.0 + shape * 15.0,
        },
        2 => FaultModel::ColumnCorrelated {
            ber,
            column_weight: shape,
        },
        _ => FaultModel::PerBankVoltage {
            // Four offsets tile the 16-bank geometry evenly, so the
            // offset-averaged `mean_ber` is exact; 0.55 V centers the
            // domains in the faulty region regardless of the shape draw.
            nominal_v: 0.55,
            bank_offsets: vec![-0.05 * shape, -0.02 * shape, 0.02 * shape, 0.05 * shape],
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every fault model is a pure function of (parameters, seed): two
    /// arms agree, and re-arming a dirty map in place (the campaign
    /// workers' allocation-free path) equals a fresh draw.
    #[test]
    fn fault_models_are_deterministic_and_rearm_cleanly(
        variant in 0usize..4,
        ber in 0.0f64..0.02,
        shape in 0.0f64..1.0,
        seed in any::<u64>(),
        stale_seed in any::<u64>(),
    ) {
        let model = model_from(variant, ber, shape);
        let geometry = MemGeometry::new(4096, 16, 16);
        let calib = BerModel::date16();
        let mut a = FaultMap::empty(4096, 22);
        model.arm(&mut a, &geometry, &calib, seed);
        // Dirty the second map with a different draw first.
        let mut b = FaultMap::empty(4096, 22);
        model.arm(&mut b, &geometry, &calib, stale_seed);
        model.arm(&mut b, &geometry, &calib, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.words(), 4096);
        prop_assert_eq!(a.width(), 22);
    }

    /// `Iid` is bit-identical to the historical `FaultMap::regenerate` —
    /// the equivalence the scenario goldens stand on.
    #[test]
    fn iid_model_matches_regenerate(
        ber in 0.0f64..0.05,
        seed in any::<u64>(),
    ) {
        let geometry = MemGeometry::new(2048, 16, 16);
        let mut armed = FaultMap::empty(2048, 22);
        FaultModel::Iid { ber }.arm(&mut armed, &geometry, &BerModel::date16(), seed);
        prop_assert_eq!(armed, FaultMap::generate(2048, 22, ber, seed));
    }

    /// Every model realizes its target mean BER: the drawn fault count
    /// sits in a (generous) band around `mean_ber × cells`.
    #[test]
    fn fault_models_hit_their_target_mean_ber(
        variant in 0usize..4,
        ber in 2e-3f64..1e-2,
        shape in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let model = model_from(variant, ber, shape);
        let words = 65_536usize;
        let width = 16u32;
        let geometry = MemGeometry::new(words, width, 16);
        let calib = BerModel::date16();
        let mut map = FaultMap::empty(words, width);
        model.arm(&mut map, &geometry, &calib, seed);
        let expected = words as f64 * f64::from(width) * model.mean_ber(&calib);
        let got = map.fault_count() as f64;
        // >= 2096 expected faults; ±25% is far beyond 6σ even for the
        // burst model's inflated variance.
        prop_assert!(
            (got - expected).abs() < 0.25 * expected,
            "{}: got {} faults, expected {}",
            model.kind(), got, expected
        );
    }
}

proptest! {
    /// DREAM through the memory stack: any set of faults confined to a
    /// word's protected region leaves the read value intact.
    #[test]
    fn dream_stack_corrects_protected_region(
        word in any::<i16>(),
        fault_bits in prop::collection::vec((0u32..16, any::<bool>()), 0..6),
        addr in 0usize..64,
    ) {
        let protected = Dream::protected_bits(word);
        let mut map = FaultMap::empty(64, 22);
        for (bit, polarity) in fault_bits {
            // Keep only faults inside the protected MSB region.
            if bit >= 16 - protected {
                let stuck = if polarity { StuckAt::One } else { StuckAt::Zero };
                map.inject(addr, bit, stuck);
            }
        }
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry(), &map);
        mem.write(addr, word);
        prop_assert_eq!(mem.read(addr), word);
    }

    /// ECC through the memory stack: one stuck bit whose polarity disagrees
    /// with the stored data is always corrected.
    #[test]
    fn ecc_stack_corrects_single_disagreeing_fault(
        word in any::<i16>(),
        bit in 0u32..22,
        polarity in any::<bool>(),
        addr in 0usize..64,
    ) {
        let mut map = FaultMap::empty(64, 22);
        let stuck = if polarity { StuckAt::One } else { StuckAt::Zero };
        map.inject(addr, bit, stuck);
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::EccSecDed, geometry(), &map);
        mem.write(addr, word);
        prop_assert_eq!(mem.read(addr), word);
        // A stuck cell either agrees with the stored bit (no error) or
        // disagrees (single error, corrected) — reads are always right.
        let stats = mem.stats();
        prop_assert_eq!(stats.uncorrectable_reads, 0);
    }

    /// Unprotected storage reads back exactly the overlay-corrupted bits —
    /// the stack adds no hidden cleaning.
    #[test]
    fn none_stack_is_bit_transparent(
        word in any::<i16>(),
        bit in 0u32..16,
        polarity in any::<bool>(),
        addr in 0usize..64,
    ) {
        let mut map = FaultMap::empty(64, 22);
        let stuck = if polarity { StuckAt::One } else { StuckAt::Zero };
        map.inject(addr, bit, stuck);
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::None, geometry(), &map);
        mem.write(addr, word);
        let expected = {
            let bits = word as u16;
            let lane = 1u16 << bit;
            if polarity { bits | lane } else { bits & !lane }
        };
        prop_assert_eq!(mem.read(addr) as u16, expected);
    }

    /// Writing other addresses never disturbs a word (no aliasing through
    /// the codec/side-array plumbing).
    #[test]
    fn no_cross_address_interference(
        words in prop::collection::vec(any::<i16>(), 64),
        emt_idx in 0usize..4,
    ) {
        let emt = EmtKind::all()[emt_idx];
        let mut mem = ProtectedMemory::new(emt, geometry());
        for (i, &w) in words.iter().enumerate() {
            mem.write(i, w);
        }
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(mem.read(i), w, "addr {} under {}", i, emt);
        }
    }

    /// Re-writing a word after its region was read with faults still
    /// refreshes the side information correctly (mask IDs never go stale).
    #[test]
    fn dream_side_info_tracks_rewrites(
        first in any::<i16>(),
        second in any::<i16>(),
        addr in 0usize..64,
    ) {
        // Fault on the MSB: protected for every word value.
        let mut map = FaultMap::empty(64, 22);
        map.inject(addr, 15, StuckAt::One);
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry(), &map);
        mem.write(addr, first);
        let _ = mem.read(addr);
        mem.write(addr, second);
        prop_assert_eq!(mem.read(addr), second);
    }
}
