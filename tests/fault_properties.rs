//! Property-based integration tests: the correction guarantees of §IV hold
//! through the full storage stack (protected memory over faulty SRAM), not
//! just at the codec level.

use dream_suite::core::{Dream, EmtKind, ProtectedMemory};
use dream_suite::mem::{FaultMap, MemGeometry, StuckAt};
use proptest::prelude::*;

fn geometry() -> MemGeometry {
    MemGeometry::new(64, 16, 16)
}

proptest! {
    /// DREAM through the memory stack: any set of faults confined to a
    /// word's protected region leaves the read value intact.
    #[test]
    fn dream_stack_corrects_protected_region(
        word in any::<i16>(),
        fault_bits in prop::collection::vec((0u32..16, any::<bool>()), 0..6),
        addr in 0usize..64,
    ) {
        let protected = Dream::protected_bits(word);
        let mut map = FaultMap::empty(64, 22);
        for (bit, polarity) in fault_bits {
            // Keep only faults inside the protected MSB region.
            if bit >= 16 - protected {
                let stuck = if polarity { StuckAt::One } else { StuckAt::Zero };
                map.inject(addr, bit, stuck);
            }
        }
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry(), &map);
        mem.write(addr, word);
        prop_assert_eq!(mem.read(addr), word);
    }

    /// ECC through the memory stack: one stuck bit whose polarity disagrees
    /// with the stored data is always corrected.
    #[test]
    fn ecc_stack_corrects_single_disagreeing_fault(
        word in any::<i16>(),
        bit in 0u32..22,
        polarity in any::<bool>(),
        addr in 0usize..64,
    ) {
        let mut map = FaultMap::empty(64, 22);
        let stuck = if polarity { StuckAt::One } else { StuckAt::Zero };
        map.inject(addr, bit, stuck);
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::EccSecDed, geometry(), &map);
        mem.write(addr, word);
        prop_assert_eq!(mem.read(addr), word);
        // A stuck cell either agrees with the stored bit (no error) or
        // disagrees (single error, corrected) — reads are always right.
        let stats = mem.stats();
        prop_assert_eq!(stats.uncorrectable_reads, 0);
    }

    /// Unprotected storage reads back exactly the overlay-corrupted bits —
    /// the stack adds no hidden cleaning.
    #[test]
    fn none_stack_is_bit_transparent(
        word in any::<i16>(),
        bit in 0u32..16,
        polarity in any::<bool>(),
        addr in 0usize..64,
    ) {
        let mut map = FaultMap::empty(64, 22);
        let stuck = if polarity { StuckAt::One } else { StuckAt::Zero };
        map.inject(addr, bit, stuck);
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::None, geometry(), &map);
        mem.write(addr, word);
        let expected = {
            let bits = word as u16;
            let lane = 1u16 << bit;
            if polarity { bits | lane } else { bits & !lane }
        };
        prop_assert_eq!(mem.read(addr) as u16, expected);
    }

    /// Writing other addresses never disturbs a word (no aliasing through
    /// the codec/side-array plumbing).
    #[test]
    fn no_cross_address_interference(
        words in prop::collection::vec(any::<i16>(), 64),
        emt_idx in 0usize..4,
    ) {
        let emt = EmtKind::all()[emt_idx];
        let mut mem = ProtectedMemory::new(emt, geometry());
        for (i, &w) in words.iter().enumerate() {
            mem.write(i, w);
        }
        for (i, &w) in words.iter().enumerate() {
            prop_assert_eq!(mem.read(i), w, "addr {} under {}", i, emt);
        }
    }

    /// Re-writing a word after its region was read with faults still
    /// refreshes the side information correctly (mask IDs never go stale).
    #[test]
    fn dream_side_info_tracks_rewrites(
        first in any::<i16>(),
        second in any::<i16>(),
        addr in 0usize..64,
    ) {
        // Fault on the MSB: protected for every word value.
        let mut map = FaultMap::empty(64, 22);
        map.inject(addr, 15, StuckAt::One);
        let mut mem = ProtectedMemory::with_fault_map(EmtKind::Dream, geometry(), &map);
        mem.write(addr, first);
        let _ = mem.read(addr);
        mem.write(addr, second);
        prop_assert_eq!(mem.read(addr), second);
    }
}
