//! Chaos tests of the campaign service: every failure the hardening
//! layer claims to survive, induced for real over real sockets.
//!
//! * Transport chaos — a fault-injecting TCP proxy refuses, truncates
//!   mid-chunk, and stalls connections between the retrying client and
//!   the service; the client must still assemble a byte-identical
//!   artifact, resuming past rows earlier attempts delivered.
//! * Backpressure — a full admission queue sheds with `429 +
//!   Retry-After`, and the retry layer waits it out to eventual success.
//! * Drain — `POST /admin/drain` cancels in-flight campaigns between
//!   grid points, sheds new submissions with `503`, and leaves a
//!   resumable prefix a restarted server completes deterministically.
//! * Protocol garbage — malformed, oversized, and slow-loris requests
//!   get JSON error bodies (`400`/`431`/`408`), never a silent drop.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use dream_suite::serve::chaos::{ChaosProxy, Fault};
use dream_suite::serve::client::{fetch_campaign, RetryPolicy};
use dream_suite::serve::http::client_request;
use dream_suite::serve::{campaign_id, ServeConfig, Server, Store};
use dream_suite::sim::report::JsonlSink;
use dream_suite::sim::scenario::{registry, Scenario};
use dream_suite::CampaignRunner;

/// A seconds-scale campaign; `seed` keeps concurrent tests' artifacts
/// distinct, `trials` scales how long it holds a worker.
fn smoke_spec(seed: u64, trials: usize) -> Scenario {
    let mut sc = registry::get("fig2", true).expect("preset exists");
    sc.records = 1;
    sc.trials = trials;
    sc.apps.truncate(1);
    sc.seed = seed;
    sc
}

/// A campaign that emits in stages: fig4 batches per voltage grid point,
/// so rows land on disk several times over a multi-second run — the shape
/// a drain must be able to interrupt mid-artifact.
fn staged_spec(seed: u64) -> Scenario {
    let mut sc = registry::get("fig4", true).expect("preset exists");
    sc.records = 4;
    sc.trials = 10;
    sc.seed = seed;
    sc
}

/// The byte-exact expectation: what the deterministic engine streams for
/// `sc` regardless of thread count, interruptions, or resumes.
fn reference_jsonl(sc: &Scenario) -> String {
    let mut sink = JsonlSink::new(Vec::new());
    CampaignRunner::new(sc.clone())
        .threads(2)
        .run(&mut sink)
        .expect("reference run");
    String::from_utf8(sink.into_inner()).expect("jsonl is UTF-8")
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dream_serve_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot_with(config: ServeConfig) -> String {
    Server::bind(config)
        .expect("server binds")
        .spawn()
        .to_string()
}

fn boot(store_dir: PathBuf) -> String {
    boot_with(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir,
        workers: 2,
        threads: 2,
        ..ServeConfig::default()
    })
}

/// Raw one-shot POST that does not read the response — used to occupy
/// workers and queue slots without blocking the test thread.
fn post_without_reading(addr: &str, body: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /campaigns HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    stream
}

fn json_number(body: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} in {body}"))
        + needle.len();
    body[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric field")
}

#[test]
fn transport_chaos_is_survived_by_the_retrying_client() {
    let sc = smoke_spec(0xC1A0, 1);
    let want = reference_jsonl(&sc);
    let payload = sc.to_json();
    let addr = boot(temp_store("transport"));

    // Complete the artifact once, straight at the server: every later
    // stream is a byte-identical replay, so faults can land anywhere.
    let first = client_request(&addr, "POST", "/campaigns", payload.as_bytes()).expect("POST");
    assert_eq!(first.status, 200);

    let proxy = ChaosProxy::start(addr.parse().expect("socket addr")).expect("proxy starts");
    let proxy_addr = proxy.addr().to_string();

    // Measure a clean proxied response to aim the truncation mid-body,
    // past at least one complete row but short of the full artifact.
    let mut probe = post_without_reading(&proxy_addr, &payload);
    let mut clean = Vec::new();
    probe.read_to_end(&mut clean).expect("clean proxied read");
    assert!(
        String::from_utf8_lossy(&clean).contains("\"snr_db\"")
            || String::from_utf8_lossy(&clean).contains("{"),
        "probe should have carried rows"
    );
    let cut = clean.len() - want.len() / 3;

    // Script the gauntlet: a refused connection, a stream truncated
    // mid-chunk, a stall longer than the client's read timeout — then
    // clean air.
    proxy.push(Fault::Refuse);
    proxy.push(Fault::CloseAfter(cut));
    proxy.push(Fault::StallAfter(clean.len() / 2, Duration::from_secs(2)));

    let policy = RetryPolicy {
        max_attempts: 10,
        base_delay: Duration::from_millis(30),
        max_delay: Duration::from_millis(200),
        read_timeout: Duration::from_millis(400),
        connect_timeout: Duration::from_secs(2),
    };
    let mut got = Vec::new();
    let outcome =
        fetch_campaign(&proxy_addr, &payload, &mut got, &policy).expect("fetch survives chaos");

    assert_eq!(
        String::from_utf8(got).expect("UTF-8 rows"),
        want,
        "assembled artifact must be byte-identical despite the faults"
    );
    assert_eq!(
        outcome.attempts, 4,
        "refused + truncated + stalled + clean = 4 streams"
    );
    assert!(
        outcome.resumed_rows > 0,
        "the truncated stream must have left rows the retry skipped: {outcome:?}"
    );
    assert_eq!(outcome.rows, want.lines().count());
    assert_eq!(proxy.pending(), 0, "every scripted fault was consumed");
}

#[test]
fn full_queue_sheds_with_retry_after_and_the_client_waits_it_out() {
    // One worker, one queue slot: the third distinct campaign must shed.
    let addr = boot_with(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: temp_store("backpressure"),
        workers: 1,
        threads: 1,
        queue_depth: 1,
        retry_after: Duration::from_secs(1),
        ..ServeConfig::default()
    });

    // `a` holds the worker for several seconds; `b` fills the queue.
    let a = smoke_spec(0xAAAA, 30);
    let b = smoke_spec(0xBBBB, 1);
    let c = smoke_spec(0xCCCC, 1);
    let _a = post_without_reading(&addr, &a.to_json());
    let _b = post_without_reading(&addr, &b.to_json());

    // Give the submissions a moment to be admitted (queued/running).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let health = client_request(&addr, "GET", "/healthz", b"").expect("healthz");
        let body = String::from_utf8(health.body).expect("UTF-8");
        if json_number(&body, "running") == 1 && json_number(&body, "queue_depth") == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "a/b never occupied the service: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A direct submission is shed with 429 + Retry-After.
    let shed = client_request(&addr, "POST", "/campaigns", c.to_json().as_bytes()).expect("POST c");
    assert_eq!(shed.status, 429);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(String::from_utf8_lossy(&shed.body).contains("error"));

    // The retry layer honors the interval to eventual success.
    let policy = RetryPolicy {
        max_attempts: 30,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(1),
        ..RetryPolicy::default()
    };
    let mut got = Vec::new();
    let outcome = fetch_campaign(&addr, &c.to_json(), &mut got, &policy)
        .expect("backpressure resolves to success");
    assert!(
        outcome.throttled >= 1,
        "the fetch should have been shed at least once: {outcome:?}"
    );
    assert_eq!(String::from_utf8(got).expect("UTF-8"), reference_jsonl(&c));

    let stats = client_request(&addr, "GET", "/stats", b"").expect("stats");
    let stats_body = String::from_utf8(stats.body).expect("UTF-8");
    assert!(json_number(&stats_body, "shed") >= 2, "{stats_body}");
}

#[test]
fn drain_cancels_in_flight_and_a_restart_resumes_byte_identically() {
    // Staged emission (one batch per voltage point over several seconds):
    // the drain below must land between batches, mid-artifact.
    let sc = staged_spec(0xD7A1);
    let want = reference_jsonl(&sc);
    let id = campaign_id(&sc);
    let store_dir = temp_store("drain");
    let addr = boot_with(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: store_dir.clone(),
        workers: 1,
        threads: 1,
        retry_after: Duration::from_secs(1),
        ..ServeConfig::default()
    });

    // Start a long campaign and wait until it has persisted some rows —
    // the drain must interrupt it mid-artifact, not before it starts.
    let _conn = post_without_reading(&addr, &sc.to_json());
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let status =
            client_request(&addr, "GET", &format!("/campaigns/{id}"), b"").expect("status");
        let body = String::from_utf8(status.body).expect("UTF-8");
        if body.contains("\"running\"") && json_number(&body, "rows") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "campaign never made progress: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Drain: in-flight work is cancelled and the service reports idle.
    let drained = client_request(&addr, "POST", "/admin/drain", b"").expect("drain");
    assert_eq!(drained.status, 200);
    let drained_body = String::from_utf8(drained.body).expect("UTF-8");
    assert!(drained_body.contains("\"cancelled\": 1"), "{drained_body}");
    assert!(drained_body.contains("\"idle\": true"), "{drained_body}");

    // The interrupted campaign is marked cancelled, its artifact is a
    // strict prefix on disk, and new submissions are shed with 503.
    let status = client_request(&addr, "GET", &format!("/campaigns/{id}"), b"").expect("status");
    let status_body = String::from_utf8(status.body).expect("UTF-8");
    assert!(status_body.contains("\"cancelled\""), "{status_body}");
    let store = Store::open(&store_dir).expect("store opens");
    assert!(!store.is_complete(&id), "a drained artifact has no marker");
    let prefix = std::fs::read_to_string(store.rows_path(&id)).expect("prefix exists");
    assert!(!prefix.is_empty() && prefix.len() < want.len());
    assert!(want.starts_with(&prefix), "prefix must be deterministic");

    let shed = client_request(&addr, "POST", "/campaigns", sc.to_json().as_bytes()).expect("POST");
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    let health = client_request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert!(String::from_utf8_lossy(&health.body).contains("\"draining\""));

    // A restarted server resumes the prefix to a byte-identical artifact.
    let addr2 = boot(store_dir);
    let resumed =
        client_request(&addr2, "POST", "/campaigns", sc.to_json().as_bytes()).expect("resume POST");
    assert_eq!(resumed.status, 200);
    assert_eq!(resumed.header("x-dream-cache"), Some("miss"));
    assert_eq!(String::from_utf8(resumed.body).expect("UTF-8"), want);
    assert_eq!(
        std::fs::read_to_string(store.rows_path(&id)).expect("rows"),
        want
    );
}

#[test]
fn protocol_garbage_gets_json_errors_not_silent_drops() {
    let addr = boot_with(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        store_dir: temp_store("garbage"),
        workers: 1,
        threads: 1,
        read_timeout: Duration::from_millis(300),
        request_deadline: Duration::from_millis(500),
        ..ServeConfig::default()
    });

    let exchange = |raw: &[u8]| -> String {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(raw).expect("send");
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        String::from_utf8_lossy(&response).to_string()
    };

    // Malformed request line: 400 with a JSON body and Connection: close.
    let malformed = exchange(b"NONSENSE\r\n\r\n");
    assert!(malformed.starts_with("HTTP/1.1 400 "), "{malformed}");
    assert!(malformed.contains("Connection: close"), "{malformed}");
    assert!(malformed.contains("{\"error\": "), "{malformed}");

    // Oversized request line: 431, not an unbounded buffer.
    let oversized = exchange(format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(64 * 1024)).as_bytes());
    assert!(oversized.starts_with("HTTP/1.1 431 "), "{oversized}");

    // Slow loris: a trickle that never finishes the request line burns
    // its own deadline and gets a 408.
    let loris = {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream.write_all(b"GET /stats HT").expect("partial send");
        let mut response = Vec::new();
        let _ = stream.read_to_end(&mut response);
        String::from_utf8_lossy(&response).to_string()
    };
    assert!(loris.starts_with("HTTP/1.1 408 "), "{loris}");

    // The health endpoint reports the satellite-mandated fields.
    let health = client_request(&addr, "GET", "/healthz", b"").expect("healthz");
    assert_eq!(health.status, 200);
    let body = String::from_utf8(health.body).expect("UTF-8");
    assert!(body.contains("\"status\": \"ok\""), "{body}");
    assert!(body.contains("\"version\": "), "{body}");
    assert_eq!(json_number(&body, "workers"), 1);
    assert_eq!(json_number(&body, "queue_capacity"), 32);
    let _ = json_number(&body, "trials_executed");

    // And the protocol abuse is counted.
    let stats = client_request(&addr, "GET", "/stats", b"").expect("stats");
    let stats_body = String::from_utf8(stats.body).expect("UTF-8");
    assert!(
        json_number(&stats_body, "bad_requests") >= 3,
        "{stats_body}"
    );
}
