//! A compressed-sensing WBSN node (the paper's §II-3 motivation): compress
//! ECG windows for radio transmission while the data memory runs at an
//! aggressive 0.55 V, exploiting CS's documented fault tolerance (§III: up
//! to bit 10/12 stuck while staying above the 35 dB reconstruction
//! threshold).
//!
//! ```text
//! cargo run --release --example cs_node
//! ```

use dream_suite::core::EmtKind;
use dream_suite::core::EnergyModelBundle;
use dream_suite::dsp::{samples_to_f64, snr_db, AppKind};
use dream_suite::ecg::Database;
use dream_suite::energy::EnergyBreakdown;
use dream_suite::mem::{BerModel, FaultMap};
use dream_suite::soc::{Soc, SocConfig};

fn main() {
    let window = 1024;
    let voltage = 0.55;
    let threshold_db = 35.0; // multi-lead reconstruction quality target
    let app = AppKind::CompressedSensing.instantiate(window);
    let config = SocConfig::inyu();
    let bundle = EnergyModelBundle::date16();
    let ber = BerModel::date16().ber(voltage);
    println!(
        "CS node: {window}-sample windows -> {} measurements, memory at {voltage} V (BER {ber:.1e})",
        app.output_len()
    );

    let mut transmitted = 0usize;
    let mut accepted = 0usize;
    let mut energy_total = EnergyBreakdown::new();
    for (i, id) in (100u16..110).enumerate() {
        let record = Database::record(id, window);
        let reference = app.run_reference(&record.samples);
        // Fresh die wear-out pattern per window (address randomization).
        let map = FaultMap::generate(config.geometry.words(), 22, ber, 0xC5_0000 + i as u64);
        let mut soc = Soc::new(config, EmtKind::Dream, Some(&map));
        let run = soc.run_app(&*app, &record.samples);
        let snr = snr_db(&reference, &samples_to_f64(run.output()));
        let ok = snr >= threshold_db;
        transmitted += 1;
        accepted += usize::from(ok);
        energy_total += soc.energy(&run, &bundle, voltage);
        println!(
            "  window {i} ({:?}): SNR {snr:5.1} dB, {} corrected reads -> {}",
            record.pathology,
            run.stats.corrected_reads,
            if ok { "transmit" } else { "retry at higher V" }
        );
    }
    println!(
        "\n{accepted}/{transmitted} windows met the {threshold_db} dB target at {voltage} V under DREAM"
    );
    println!(
        "energy: {:.1} nJ/window average ({})",
        energy_total.total_nj() / transmitted as f64,
        energy_total.scaled(1.0 / transmitted as f64)
    );

    // The same windows with no protection, for contrast.
    let mut ok_unprotected = 0usize;
    for (i, id) in (100u16..110).enumerate() {
        let record = Database::record(id, window);
        let reference = app.run_reference(&record.samples);
        let map = FaultMap::generate(config.geometry.words(), 22, ber, 0xC5_0000 + i as u64);
        let mut soc = Soc::new(config, EmtKind::None, Some(&map));
        let run = soc.run_app(&*app, &record.samples);
        ok_unprotected +=
            usize::from(snr_db(&reference, &samples_to_f64(run.output())) >= threshold_db);
    }
    println!(
        "without protection, only {ok_unprotected}/{transmitted} windows pass at this voltage"
    );
}
