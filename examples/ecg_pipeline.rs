//! An end-to-end wearable-node scenario: synthesize a pathological ECG,
//! run wavelet delineation on the modelled MPSoC with its data memory
//! scaled to 0.6 V, and compare the fiducial points and output quality
//! with and without DREAM.
//!
//! ```text
//! cargo run --release --example ecg_pipeline
//! ```

use dream_suite::core::EmtKind;
use dream_suite::dsp::{samples_to_f64, snr_db, AppKind};
use dream_suite::ecg::Database;
use dream_suite::mem::{BerModel, FaultMap};
use dream_suite::soc::{Soc, SocConfig};

fn main() {
    let window = 2048;
    let voltage = 0.55;
    let record = Database::record(106, window); // bradycardia record
    println!(
        "record {} ({:?}), {} samples at {} Hz, {:.0}% negative",
        record.id,
        record.pathology,
        record.samples.len(),
        record.fs,
        record.negative_fraction() * 100.0
    );

    let app = AppKind::WaveletDelineation.instantiate(window);
    let reference = app.run_reference(&record.samples);

    // One fault map at the 0.6 V BER, shared by both platforms (§V).
    let config = SocConfig::inyu();
    let ber = BerModel::date16().ber(voltage);
    let map = FaultMap::generate(config.geometry.words(), 22, ber, 0xEC6);
    println!(
        "memory at {voltage} V: BER {ber:.2e}, {} stuck bits in the 32 kB array",
        map.fault_count()
    );

    for emt in [EmtKind::None, EmtKind::Dream] {
        let mut soc = Soc::new(config, emt, Some(&map));
        let run = soc.run_app(&*app, &record.samples);
        let snr = snr_db(&reference, &samples_to_f64(run.output()));
        let beats: Vec<&[i16]> = run.output().chunks(5).filter(|c| c[2] != 0).collect();
        println!(
            "\n[{emt}] {} beats found, SNR {:.1} dB, {} corrected reads, {} cycles",
            beats.len(),
            snr,
            run.stats.corrected_reads,
            run.cycles
        );
        for (i, b) in beats.iter().enumerate().take(4) {
            println!(
                "  beat {i}: P={:4} Q={:4} R={:4} S={:4} T={:4}",
                b[0], b[1], b[2], b[3], b[4]
            );
        }
    }
    println!(
        "\nthe unprotected run misplaces or hallucinates fiducials; DREAM at the same voltage \
         keeps the delineation intact — the §VI-C argument for scaling with protection."
    );
}
