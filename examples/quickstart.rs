//! Quickstart: what DREAM does to one memory word, side by side with ECC
//! SEC/DED, on the fault patterns that separate them.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dream_suite::core::{DecodeOutcome, Dream, EccSecDed, EmtCodec};

fn show(label: &str, stored: u32, seen: u32, decoded: i16, outcome: DecodeOutcome, want: i16) {
    let verdict = if decoded == want {
        "recovered"
    } else {
        "CORRUPTED"
    };
    println!(
        "  {label:<28} stored {stored:#08x}, read {seen:#08x} -> {decoded:6} [{outcome:?}] {verdict}"
    );
}

fn main() {
    let word: i16 = -42; // 1111_1111_1101_0110 — a typical small ECG sample
    println!(
        "protecting the 16-bit sample {word} = {:#018b}",
        word as u16
    );

    let dream = Dream::new();
    let ecc = EccSecDed::new();
    let d = dream.encode(word);
    let e = ecc.encode(word);
    println!(
        "\nDREAM side info: sign={} mask_id={} (run of {} identical MSBs; {} bits protected)",
        (d.side >> 4) & 1,
        d.side & 0xF,
        (d.side & 0xF) + 1,
        Dream::protected_bits(word),
    );
    println!(
        "ECC codeword: {:#08x} (16 data + 6 check bits in the faulty array)",
        e.code
    );

    println!("\n-- single MSB stuck-at-0 (both techniques cope) --");
    let flip = 1 << 15;
    let dd = dream.decode(d.code ^ flip, d.side);
    show("DREAM", d.code, d.code ^ flip, dd.word, dd.outcome, word);
    let de = ecc.decode(e.code ^ flip, e.side);
    show(
        "ECC SEC/DED",
        e.code,
        e.code ^ flip,
        de.word,
        de.outcome,
        word,
    );

    println!("\n-- three faults in the sign run (the <0.55 V regime) --");
    let flip = 0b1110_0000_0000_0000;
    let dd = dream.decode(d.code ^ flip, d.side);
    show("DREAM", d.code, d.code ^ flip, dd.word, dd.outcome, word);
    let de = ecc.decode(e.code ^ flip, e.side);
    show(
        "ECC SEC/DED (overwhelmed)",
        e.code,
        e.code ^ flip,
        de.word,
        de.outcome,
        word,
    );

    println!("\n-- one LSB fault (DREAM lets it pass; the apps tolerate it) --");
    let flip = 0b1;
    let dd = dream.decode(d.code ^ flip, d.side);
    show("DREAM", d.code, d.code ^ flip, dd.word, dd.outcome, word);
    let de = ecc.decode(e.code ^ flip, e.side);
    show(
        "ECC SEC/DED",
        e.code,
        e.code ^ flip,
        de.word,
        de.outcome,
        word,
    );

    println!(
        "\nstorage cost per word: DREAM {} side bits, ECC {} in-array bits (paper Formula 2: 5 vs 6)",
        dream.side_bits(),
        ecc.code_width() - 16
    );
}
