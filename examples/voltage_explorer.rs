//! The §VI-C workflow as a tool: sweep the memory supply for one
//! application, print quality and energy per EMT, and recommend which
//! technique to run in each voltage band — the "triggering, selectively,
//! one or the other" policy of the paper.
//!
//! ```text
//! cargo run --release --example voltage_explorer [-- --app dwt|matfilt|cs|morpho|delineate] [--runs N]
//! ```

use dream_suite::core::EmtKind;
use dream_suite::dsp::AppKind;
use dream_suite::sim::energy_table::{run_energy_table, EnergyConfig};
use dream_suite::sim::fig4::{curve, run_fig4, Fig4Config};
use dream_suite::sim::report;

fn parse_app(name: &str) -> AppKind {
    match name {
        "dwt" => AppKind::Dwt,
        "matfilt" => AppKind::MatrixFilter,
        "cs" => AppKind::CompressedSensing,
        "morpho" => AppKind::MorphologicalFilter,
        "delineate" => AppKind::WaveletDelineation,
        other => panic!("unknown app {other:?} (dwt|matfilt|cs|morpho|delineate)"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut app = AppKind::Dwt;
    let mut runs = 20usize;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--app" => app = parse_app(iter.next().expect("--app needs a value")),
            "--runs" => {
                runs = iter
                    .next()
                    .expect("--runs needs a value")
                    .parse()
                    .expect("number")
            }
            _ => {}
        }
    }
    let window = 1024;
    eprintln!("exploring {app} over 0.5-0.9 V ({runs} fault maps per point)…");

    let points = run_fig4(&Fig4Config {
        window,
        runs,
        apps: vec![app],
        ..Default::default()
    });
    let energy = run_energy_table(&EnergyConfig {
        app,
        window,
        ..Default::default()
    });

    let emts = EmtKind::paper_set();
    let mut table = Vec::new();
    let voltages: Vec<f64> = curve(&points, app, EmtKind::None)
        .iter()
        .map(|p| p.voltage)
        .collect();
    for &v in voltages.iter().rev() {
        let mut row = vec![format!("{v:.2}")];
        // Quality and energy per EMT at this voltage.
        let mut best: Option<(EmtKind, f64)> = None;
        for emt in emts {
            let p = curve(&points, app, emt)
                .into_iter()
                .find(|p| (p.voltage - v).abs() < 1e-9)
                .expect("grid");
            let e = energy
                .iter()
                .find(|r| r.emt == emt && (r.voltage - v).abs() < 1e-9)
                .expect("grid");
            row.push(format!(
                "{} / {:.0} nJ",
                report::snr(p.mean_snr_db),
                e.energy.total_nj()
            ));
            // "Usable" = within 1 dB of this EMT's own nominal ceiling.
            let ceiling = curve(&points, app, emt).last().expect("grid").mean_snr_db;
            if p.mean_snr_db >= ceiling - 1.0 {
                let total = e.energy.total_pj();
                if best.is_none_or(|(_, b)| total < b) {
                    best = Some((emt, total));
                }
            }
        }
        row.push(best.map_or("none usable".into(), |(emt, _)| emt.to_string()));
        table.push(row);
    }
    let headers = ["V", "no protection", "DREAM", "ECC SEC/DED", "recommended"];
    println!("\n{app}: mean SNR / energy per run, and the cheapest EMT still within -1 dB");
    println!("{}", report::format_table(&headers, &table));
}
