//! **dream-suite** — a full reproduction of *"Energy vs. Reliability
//! Trade-offs Exploration in Biomedical Ultra-Low Power Devices"* (Duch,
//! Garcia del Valle, Ganapathy, Burg, Atienza — DATE 2016).
//!
//! This façade crate re-exports the workspace so downstream users depend on
//! one name:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `dream-core` | the DREAM technique, ECC SEC/DED, protected memory |
//! | [`fixed`] | `dream-fixed` | Q15 fixed-point arithmetic |
//! | [`ecg`] | `dream-ecg` | synthetic ECG substrate (MIT-BIH stand-in) |
//! | [`mem`] | `dream-mem` | BER model, stuck-at fault maps, faulty SRAM |
//! | [`energy`] | `dream-energy` | CACTI-like energy/area models |
//! | [`dsp`] | `dream-dsp` | the five biomedical applications + SNR metric |
//! | [`soc`] | `dream-soc` | cycle-approximate MPSoC (VirtualSOC stand-in) |
//! | [`sim`] | `dream-sim` | the per-figure/table experiment drivers |
//! | [`serve`] | `dream-serve` | the campaign service (HTTP API + artifact store) |
//!
//! # Quickstart
//!
//! ```
//! use dream_suite::core::{DecodeOutcome, Dream, EmtCodec};
//!
//! // DREAM protects the sign-extension run of each 16-bit sample.
//! let dream = Dream::new();
//! let encoded = dream.encode(-42);
//! let corrupted = encoded.code ^ 0xFF00; // eight MSB faults
//! let decoded = dream.decode(corrupted, encoded.side);
//! assert_eq!(decoded.word, -42);
//! assert_eq!(decoded.outcome, DecodeOutcome::Corrected);
//! ```
//!
//! # Running campaigns
//!
//! Every campaign driver — the `dream` CLI, the campaign service, tests —
//! goes through one surface, the [`CampaignRunner`] builder:
//!
//! ```
//! use dream_suite::{CampaignRunner, CancelToken};
//! use dream_suite::sim::scenario::registry;
//!
//! let sc = registry::get("fig2", true).expect("preset exists");
//! let token = CancelToken::new(); // fire from another thread to stop early
//! let outcome = CampaignRunner::new(sc)
//!     .threads(2)
//!     .cancel_token(token)
//!     .on_progress(|p| eprintln!("{} rows of {} trials", p.rows, p.trials_total))
//!     .run_discarding()
//!     .expect("campaign runs");
//! assert!(!outcome.rows.is_empty());
//! ```
//!
//! Invalid specs surface as the typed [`SpecError`] (field-path context
//! included), which the campaign service maps to HTTP 400s.
//!
//! See `examples/` for end-to-end scenarios (start with
//! `cargo run --example quickstart`) and `README.md` for the workspace
//! layout and the tier-1 verification commands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dream_core as core;
pub use dream_dsp as dsp;
pub use dream_ecg as ecg;
pub use dream_energy as energy;
pub use dream_fixed as fixed;
pub use dream_mem as mem;
pub use dream_serve as serve;
pub use dream_sim as sim;
pub use dream_soc as soc;

pub use dream_sim::scenario::{CampaignRunner, CancelToken, Progress, SpecError};
